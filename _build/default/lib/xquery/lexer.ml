(* Lexer for the combined XQuery + XQuery Full-Text grammar.

   XQuery keywords are contextual, so identifiers are produced as [Name]
   tokens and the parser decides keyword-hood.  Direct element constructors
   are captured as balanced [Xml_blob] tokens (the lexer tracks tag nesting
   and enclosed-expression braces); the parser re-parses blob contents,
   recursively re-entering the expression grammar inside "{...}".  This is
   the standard trick for XQuery's dual lexical modes with a pre-tokenizing
   lexer. *)

type token =
  | String_lit of string
  | Integer_lit of int
  | Double_lit of float
  | Name of string  (** QName or contextual keyword *)
  | Var of string
  | Xml_blob of string  (** a whole direct constructor, "<a ...>...</a>" *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Comma
  | Semicolon
  | Slash
  | Dslash
  | At_sign
  | Dot
  | Dotdot
  | Star
  | Plus
  | Minus
  | Pipe
  | Dpipe  (** "||" — FTOr shorthand *)
  | Ampamp  (** "&&" — FTAnd shorthand *)
  | Bang  (** "!" — FTUnaryNot shorthand *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Assign  (** ":=" *)
  | Coloncolon
  | Question
  | Dollar_lone  (** unused; kept for exhaustive error reporting *)
  | Eof

exception Error of { pos : int; msg : string }

let error pos msg = raise (Error { pos; msg })

let token_to_string = function
  | String_lit s -> Printf.sprintf "%S" s
  | Integer_lit i -> string_of_int i
  | Double_lit f -> string_of_float f
  | Name n -> n
  | Var v -> "$" ^ v
  | Xml_blob b ->
      if String.length b > 20 then String.sub b 0 20 ^ "..." else b
  | Lparen -> "(" | Rparen -> ")"
  | Lbracket -> "[" | Rbracket -> "]"
  | Lbrace -> "{" | Rbrace -> "}"
  | Comma -> "," | Semicolon -> ";"
  | Slash -> "/" | Dslash -> "//"
  | At_sign -> "@" | Dot -> "." | Dotdot -> ".."
  | Star -> "*" | Plus -> "+" | Minus -> "-"
  | Pipe -> "|" | Dpipe -> "||" | Ampamp -> "&&" | Bang -> "!"
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Assign -> ":=" | Coloncolon -> "::" | Question -> "?"
  | Dollar_lone -> "$" | Eof -> "<eof>"

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_digit c = c >= '0' && c <= '9'

(* After these tokens, "<" starts a direct constructor rather than a
   comparison: we are in operand position. *)
let operand_position = function
  | None -> true
  | Some tok -> (
      match tok with
      | Lparen | Lbrace | Lbracket | Comma | Semicolon | Assign | Eq | Ne | Lt
      | Le | Gt | Ge | Plus | Minus | Star | Slash | Dslash | Pipe | Dpipe
      | Ampamp | Bang ->
          true
      | Name
          ( "return" | "then" | "else" | "satisfies" | "in" | "where" | "to"
          | "and" | "or" | "div" | "idiv" | "mod" | "union" | "by" | "if" ) ->
          true
      | _ -> false)

type state = { src : string; mutable pos : int; mutable toks : (token * int) list }

let peek_at st k =
  if st.pos + k < String.length st.src then Some st.src.[st.pos + k] else None

let peek st = peek_at st 0

(* Skip whitespace and (possibly nested) "(: ... :)" comments. *)
let rec skip_trivia st =
  (match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_trivia st
  | Some '(' when peek_at st 1 = Some ':' ->
      let start = st.pos in
      st.pos <- st.pos + 2;
      let depth = ref 1 in
      while !depth > 0 do
        match peek st with
        | None -> error start "unterminated XQuery comment"
        | Some '(' when peek_at st 1 = Some ':' ->
            incr depth;
            st.pos <- st.pos + 2
        | Some ':' when peek_at st 1 = Some ')' ->
            decr depth;
            st.pos <- st.pos + 2
        | Some _ -> st.pos <- st.pos + 1
      done;
      skip_trivia st
  | _ -> ())

let lex_string st quote =
  (* positioned after the opening quote; doubled quotes escape themselves *)
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st.pos "unterminated string literal"
    | Some c when c = quote ->
        st.pos <- st.pos + 1;
        if peek st = Some quote then begin
          Buffer.add_char buf quote;
          st.pos <- st.pos + 1;
          loop ()
        end
    | Some '&' ->
        (* predefined entities inside string literals, as in the paper's
           queries ("usability" &amp; "testing") *)
        let tail = String.length st.src - st.pos in
        let try_entity (ent, repl) =
          let n = String.length ent in
          if tail >= n && String.sub st.src st.pos n = ent then begin
            Buffer.add_string buf repl;
            st.pos <- st.pos + n;
            true
          end
          else false
        in
        if
          not
            (List.exists try_entity
               [ ("&amp;", "&"); ("&lt;", "<"); ("&gt;", ">");
                 ("&quot;", "\""); ("&apos;", "'") ])
        then begin
          Buffer.add_char buf '&';
          st.pos <- st.pos + 1
        end;
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c when is_digit c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  let is_double = ref false in
  (match (peek st, peek_at st 1) with
  | Some '.', Some c when is_digit c ->
      is_double := true;
      st.pos <- st.pos + 1;
      while (match peek st with Some c when is_digit c -> true | _ -> false) do
        st.pos <- st.pos + 1
      done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      let save = st.pos in
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      if (match peek st with Some c -> is_digit c | None -> false) then begin
        is_double := true;
        while (match peek st with Some c when is_digit c -> true | _ -> false) do
          st.pos <- st.pos + 1
        done
      end
      else st.pos <- save
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_double then Double_lit (float_of_string text)
  else Integer_lit (int_of_string text)

let lex_name st =
  let start = st.pos in
  st.pos <- st.pos + 1;
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  (* QName: one optional ":NCName", but not "::" (axis separator) *)
  (match (peek st, peek_at st 1) with
  | Some ':', Some c when is_name_start c ->
      st.pos <- st.pos + 1;
      while (match peek st with Some c when is_name_char c -> true | _ -> false) do
        st.pos <- st.pos + 1
      done
  | _ -> ());
  String.sub st.src start (st.pos - start)

(* Capture a whole direct element constructor as a balanced blob.  Tracks
   tag nesting depth and skips quoted attribute values, comments, CDATA and
   enclosed {..} expressions (which may contain string literals and nested
   braces — and nested constructors, which re-enter tag tracking when their
   own '<' is seen). *)
let lex_xml_blob st =
  let start = st.pos in
  let depth = ref 0 in
  let finished = ref false in
  let fail () = error start "unterminated direct XML constructor" in
  let skip_until_str stop =
    let n = String.length stop in
    let rec loop () =
      if st.pos + n > String.length st.src then fail ()
      else if String.sub st.src st.pos n = stop then st.pos <- st.pos + n
      else begin
        st.pos <- st.pos + 1;
        loop ()
      end
    in
    loop ()
  in
  let rec skip_braces () =
    (* positioned after '{'; skip to matching '}' honoring quotes/nesting *)
    match peek st with
    | None -> fail ()
    | Some '}' -> st.pos <- st.pos + 1
    | Some '{' ->
        st.pos <- st.pos + 1;
        skip_braces ();
        skip_braces ()
    | Some (('"' | '\'') as q) ->
        st.pos <- st.pos + 1;
        let rec str () =
          match peek st with
          | None -> fail ()
          | Some c when c = q ->
              st.pos <- st.pos + 1;
              if peek st = Some q then (st.pos <- st.pos + 1; str ())
          | Some _ -> st.pos <- st.pos + 1; str ()
        in
        str ();
        skip_braces ()
    | Some _ ->
        st.pos <- st.pos + 1;
        skip_braces ()
  in
  (* consume one tag starting at '<'; returns after its '>' *)
  let consume_tag () =
    (* at '<' *)
    if peek_at st 1 = Some '/' then begin
      (* closing tag *)
      skip_until_str ">";
      decr depth
    end
    else if
      (match peek_at st 1 with Some '!' -> true | _ -> false)
    then
      if st.pos + 4 <= String.length st.src && String.sub st.src st.pos 4 = "<!--"
      then skip_until_str "-->"
      else skip_until_str "]]>"
    else begin
      (* opening tag: scan to '>' skipping quoted attribute values and AVT
         braces; detect self-closing "/>" *)
      st.pos <- st.pos + 1;
      let self_closing = ref false in
      let rec scan () =
        match peek st with
        | None -> fail ()
        | Some '>' ->
            st.pos <- st.pos + 1
        | Some '/' when peek_at st 1 = Some '>' ->
            self_closing := true;
            st.pos <- st.pos + 2
        | Some (('"' | '\'') as q) ->
            st.pos <- st.pos + 1;
            let rec str () =
              match peek st with
              | None -> fail ()
              | Some c when c = q -> st.pos <- st.pos + 1
              | Some '{' ->
                  st.pos <- st.pos + 1;
                  skip_braces ();
                  str ()
              | Some _ -> st.pos <- st.pos + 1; str ()
            in
            str ();
            scan ()
        | Some _ ->
            st.pos <- st.pos + 1;
            scan ()
      in
      scan ();
      if not !self_closing then incr depth
    end;
    if !depth = 0 then finished := true
  in
  consume_tag ();
  while not !finished do
    match peek st with
    | None -> fail ()
    | Some '<' -> consume_tag ()
    | Some '{' ->
        st.pos <- st.pos + 1;
        skip_braces ()
    | Some _ -> st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let tokenize src =
  let st = { src; pos = 0; toks = [] } in
  let prev () = match st.toks with [] -> None | (t, _) :: _ -> Some t in
  let push tok pos = st.toks <- (tok, pos) :: st.toks in
  let rec loop () =
    skip_trivia st;
    let pos = st.pos in
    match peek st with
    | None -> push Eof pos
    | Some c ->
        (match c with
        | '"' | '\'' ->
            st.pos <- st.pos + 1;
            push (String_lit (lex_string st c)) pos
        | '$' ->
            st.pos <- st.pos + 1;
            (match peek st with
            | Some c when is_name_start c -> push (Var (lex_name st)) pos
            | _ -> error pos "expected a variable name after '$'")
        | '(' -> st.pos <- st.pos + 1; push Lparen pos
        | ')' -> st.pos <- st.pos + 1; push Rparen pos
        | '[' -> st.pos <- st.pos + 1; push Lbracket pos
        | ']' -> st.pos <- st.pos + 1; push Rbracket pos
        | '{' -> st.pos <- st.pos + 1; push Lbrace pos
        | '}' -> st.pos <- st.pos + 1; push Rbrace pos
        | ',' -> st.pos <- st.pos + 1; push Comma pos
        | ';' -> st.pos <- st.pos + 1; push Semicolon pos
        | '?' -> st.pos <- st.pos + 1; push Question pos
        | '@' -> st.pos <- st.pos + 1; push At_sign pos
        | '|' ->
            if peek_at st 1 = Some '|' then begin
              st.pos <- st.pos + 2;
              push Dpipe pos
            end
            else begin
              st.pos <- st.pos + 1;
              push Pipe pos
            end
        | '&' ->
            if peek_at st 1 = Some '&' then begin
              st.pos <- st.pos + 2;
              push Ampamp pos
            end
            else if
              (* "&amp;" spelled out between selections, as in the paper's
                 examples: treat as FTAnd *)
              st.pos + 5 <= String.length src
              && String.sub src st.pos 5 = "&amp;"
            then begin
              st.pos <- st.pos + 5;
              push Ampamp pos
            end
            else error pos "unexpected '&'"
        | '+' -> st.pos <- st.pos + 1; push Plus pos
        | '-' -> st.pos <- st.pos + 1; push Minus pos
        | '*' -> st.pos <- st.pos + 1; push Star pos
        | '=' -> st.pos <- st.pos + 1; push Eq pos
        | '!' ->
            if peek_at st 1 = Some '=' then begin
              st.pos <- st.pos + 2;
              push Ne pos
            end
            else begin
              st.pos <- st.pos + 1;
              push Bang pos
            end
        | '<' ->
            if
              operand_position (prev ())
              && (match peek_at st 1 with
                 | Some c -> is_name_start c
                 | None -> false)
            then push (Xml_blob (lex_xml_blob st)) pos
            else if peek_at st 1 = Some '=' then begin
              st.pos <- st.pos + 2;
              push Le pos
            end
            else begin
              st.pos <- st.pos + 1;
              push Lt pos
            end
        | '>' ->
            if peek_at st 1 = Some '=' then begin
              st.pos <- st.pos + 2;
              push Ge pos
            end
            else begin
              st.pos <- st.pos + 1;
              push Gt pos
            end
        | '/' ->
            if peek_at st 1 = Some '/' then begin
              st.pos <- st.pos + 2;
              push Dslash pos
            end
            else begin
              st.pos <- st.pos + 1;
              push Slash pos
            end
        | ':' ->
            if peek_at st 1 = Some '=' then begin
              st.pos <- st.pos + 2;
              push Assign pos
            end
            else if peek_at st 1 = Some ':' then begin
              st.pos <- st.pos + 2;
              push Coloncolon pos
            end
            else error pos "unexpected ':'"
        | '.' ->
            if peek_at st 1 = Some '.' then begin
              st.pos <- st.pos + 2;
              push Dotdot pos
            end
            else if (match peek_at st 1 with Some c -> is_digit c | None -> false)
            then push (lex_number st) pos
            else begin
              st.pos <- st.pos + 1;
              push Dot pos
            end
        | c when is_digit c -> push (lex_number st) pos
        | c when is_name_start c -> push (Name (lex_name st)) pos
        | c -> error pos (Printf.sprintf "unexpected character %C" c));
        if (match prev () with Some Eof -> false | _ -> true) then loop ()
  in
  loop ();
  Array.of_list (List.rev_map (fun (t, p) -> (t, p)) st.toks)
