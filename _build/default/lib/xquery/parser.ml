(* Recursive-descent parser for the combined XQuery + Full-Text grammar.

   The paper (Section 3.2.2) notes that the two grammars nest arbitrarily:
   XQuery expressions contain full-text selections (ftcontains) and
   selections embed XQuery expressions (parenthesized word sources).  The
   one genuine ambiguity — "(" opening either a parenthesized FTSelection or
   an embedded XQuery expression — is resolved exactly as the paper
   describes, by limited lookahead with backtracking: we first try the
   selection reading and fall back to the expression reading (also when the
   closing ")" is followed by an any/all keyword, which only follows word
   sources). *)

open Ast

exception Error of { pos : int; msg : string }

let error pos fmt = Format.kasprintf (fun msg -> raise (Error { pos; msg })) fmt

type p = { toks : (Lexer.token * int) array; mutable i : int }

let cur p = fst p.toks.(p.i)
let cur_pos p = snd p.toks.(p.i)
let peek_tok p k = if p.i + k < Array.length p.toks then fst p.toks.(p.i + k) else Lexer.Eof
let advance p = if p.i < Array.length p.toks - 1 then p.i <- p.i + 1

let expect p tok =
  if cur p = tok then advance p
  else
    error (cur_pos p) "expected %s but found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string (cur p))

(* Contextual keywords: a Name token with a specific spelling. *)
let looking_kw p kw = match cur p with Lexer.Name n -> n = kw | _ -> false

let accept_kw p kw =
  if looking_kw p kw then begin
    advance p;
    true
  end
  else false

let expect_kw p kw =
  if not (accept_kw p kw) then
    error (cur_pos p) "expected keyword '%s' but found %s" kw
      (Lexer.token_to_string (cur p))

let expect_name p =
  match cur p with
  | Lexer.Name n ->
      advance p;
      n
  | t -> error (cur_pos p) "expected a name but found %s" (Lexer.token_to_string t)

let expect_var p =
  match cur p with
  | Lexer.Var v ->
      advance p;
      v
  | t -> error (cur_pos p) "expected a variable but found %s" (Lexer.token_to_string t)

let expect_string p =
  match cur p with
  | Lexer.String_lit s ->
      advance p;
      s
  | t ->
      error (cur_pos p) "expected a string literal but found %s"
        (Lexer.token_to_string t)

(* Skip a SequenceType annotation ("as fts:AllMatches", "as element()*",
   "as xs:integer?", ...).  Types are parsed and discarded: the engine is
   dynamically typed, as sufficient for the paper's queries. *)
let skip_sequence_type p =
  (match cur p with
  | Lexer.Name _ -> advance p
  | t -> error (cur_pos p) "expected a type name, found %s" (Lexer.token_to_string t));
  if cur p = Lexer.Lparen then begin
    (* element(), document-node(), item(), possibly with a name inside *)
    advance p;
    let depth = ref 1 in
    while !depth > 0 do
      (match cur p with
      | Lexer.Lparen -> incr depth
      | Lexer.Rparen -> decr depth
      | Lexer.Eof -> error (cur_pos p) "unterminated type"
      | _ -> ());
      advance p
    done
  end;
  (* occurrence indicator *)
  match cur p with
  | Lexer.Star | Lexer.Plus | Lexer.Question -> advance p
  | _ -> ()

let kind_test_names = [ "text"; "node"; "comment"; "element"; "document-node" ]

let axis_of_name = function
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "descendant-or-self" -> Some Descendant_or_self
  | "self" -> Some Self
  | "attribute" -> Some Attribute
  | "parent" -> Some Parent
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | "following-sibling" -> Some Following_sibling
  | "preceding-sibling" -> Some Preceding_sibling
  | "following" -> Some Following
  | "preceding" -> Some Preceding
  | _ -> None

(* --- expressions --- *)

let rec parse_expr_sequence p =
  let first = parse_expr_single p in
  if cur p = Lexer.Comma then begin
    let items = ref [ first ] in
    while cur p = Lexer.Comma do
      advance p;
      items := parse_expr_single p :: !items
    done;
    Sequence (List.rev !items)
  end
  else first

and parse_expr_single p =
  match cur p with
  | Lexer.Name ("for" | "let") when (match peek_tok p 1 with Lexer.Var _ -> true | _ -> false)
    ->
      parse_flwor p
  | Lexer.Name ("some" | "every")
    when (match peek_tok p 1 with Lexer.Var _ -> true | _ -> false) ->
      parse_quantified p
  | Lexer.Name "if" when peek_tok p 1 = Lexer.Lparen -> parse_if p
  | _ -> parse_or p

and parse_flwor p =
  let clauses = ref [] in
  let rec clause_loop () =
    if looking_kw p "for" && (match peek_tok p 1 with Lexer.Var _ -> true | _ -> false)
    then begin
      advance p;
      let rec vars () =
        let var = expect_var p in
        let positional =
          if looking_kw p "at" then begin
            advance p;
            Some (expect_var p)
          end
          else None
        in
        expect_kw p "in";
        let source = parse_expr_single p in
        clauses := For_clause { var; positional; source } :: !clauses;
        if cur p = Lexer.Comma then begin
          advance p;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    end
    else if
      looking_kw p "let" && (match peek_tok p 1 with Lexer.Var _ -> true | _ -> false)
    then begin
      advance p;
      let rec vars () =
        let var = expect_var p in
        if looking_kw p "as" then begin
          advance p;
          skip_sequence_type p
        end;
        expect p Lexer.Assign;
        let value = parse_expr_single p in
        clauses := Let_clause { var; value } :: !clauses;
        if cur p = Lexer.Comma then begin
          advance p;
          vars ()
        end
      in
      vars ();
      clause_loop ()
    end
  in
  clause_loop ();
  if looking_kw p "where" then begin
    advance p;
    clauses := Where_clause (parse_expr_single p) :: !clauses
  end;
  if looking_kw p "stable" then advance p;
  if looking_kw p "order" then begin
    advance p;
    expect_kw p "by";
    let rec keys acc =
      let key = parse_expr_single p in
      let descending =
        if accept_kw p "descending" then true
        else begin
          ignore (accept_kw p "ascending");
          false
        end
      in
      if accept_kw p "empty" then
        if not (accept_kw p "greatest") then expect_kw p "least";
      let acc = (key, descending) :: acc in
      if cur p = Lexer.Comma then begin
        advance p;
        keys acc
      end
      else List.rev acc
    in
    clauses := Order_by (keys []) :: !clauses
  end;
  expect_kw p "return";
  let body = parse_expr_single p in
  Flwor (List.rev !clauses, body)

and parse_quantified p =
  let quant = if accept_kw p "some" then Some_q else (expect_kw p "every"; Every_q) in
  let rec vars acc =
    let var = expect_var p in
    expect_kw p "in";
    let source = parse_expr_single p in
    let acc = (var, source) :: acc in
    if cur p = Lexer.Comma then begin
      advance p;
      vars acc
    end
    else List.rev acc
  in
  let bindings = vars [] in
  expect_kw p "satisfies";
  let condition = parse_expr_single p in
  Quantified (quant, bindings, condition)

and parse_if p =
  expect_kw p "if";
  expect p Lexer.Lparen;
  let cond = parse_expr_sequence p in
  expect p Lexer.Rparen;
  expect_kw p "then";
  let then_e = parse_expr_single p in
  expect_kw p "else";
  let else_e = parse_expr_single p in
  If (cond, then_e, else_e)

and parse_or p =
  let left = parse_and p in
  if looking_kw p "or" then begin
    advance p;
    Or (left, parse_or p)
  end
  else left

and parse_and p =
  let left = parse_comparison p in
  if looking_kw p "and" then begin
    advance p;
    And (left, parse_and p)
  end
  else left

and parse_comparison p =
  let left = parse_ftcontains p in
  let general op =
    advance p;
    General_cmp (op, left, parse_ftcontains p)
  in
  let value op =
    advance p;
    Value_cmp (op, left, parse_ftcontains p)
  in
  match cur p with
  | Lexer.Eq -> general Eq
  | Lexer.Ne -> general Ne
  | Lexer.Lt -> general Lt
  | Lexer.Le -> general Le
  | Lexer.Gt -> general Gt
  | Lexer.Ge -> general Ge
  | Lexer.Name "eq" -> value Eq
  | Lexer.Name "ne" -> value Ne
  | Lexer.Name "lt" -> value Lt
  | Lexer.Name "le" -> value Le
  | Lexer.Name "gt" -> value Gt
  | Lexer.Name "ge" -> value Ge
  | Lexer.Name "is" ->
      advance p;
      Node_is (left, parse_ftcontains p)
  | _ -> left

and parse_ftcontains p =
  let context = parse_range_expr p in
  if looking_kw p "ftcontains" then begin
    advance p;
    let selection = parse_ft_selection p in
    let ignore_nodes =
      if looking_kw p "without" && peek_tok p 1 = Lexer.Name "content" then begin
        advance p;
        advance p;
        Some (parse_union_expr p)
      end
      else None
    in
    Ft_contains { context; selection; ignore_nodes }
  end
  else context

and parse_range_expr p =
  let left = parse_additive p in
  if looking_kw p "to" then begin
    advance p;
    Range (left, parse_additive p)
  end
  else left

and parse_additive p =
  let left = ref (parse_multiplicative p) in
  let rec loop () =
    match cur p with
    | Lexer.Plus ->
        advance p;
        left := Arith (Add, !left, parse_multiplicative p);
        loop ()
    | Lexer.Minus ->
        advance p;
        left := Arith (Sub, !left, parse_multiplicative p);
        loop ()
    | _ -> ()
  in
  loop ();
  !left

and parse_multiplicative p =
  let left = ref (parse_unary p) in
  let rec loop () =
    match cur p with
    | Lexer.Star ->
        advance p;
        left := Arith (Mul, !left, parse_unary p);
        loop ()
    | Lexer.Name "div" ->
        advance p;
        left := Arith (Div, !left, parse_unary p);
        loop ()
    | Lexer.Name "idiv" ->
        advance p;
        left := Arith (Idiv, !left, parse_unary p);
        loop ()
    | Lexer.Name "mod" ->
        advance p;
        left := Arith (Mod, !left, parse_unary p);
        loop ()
    | _ -> ()
  in
  loop ();
  !left

and parse_unary p =
  match cur p with
  | Lexer.Minus ->
      advance p;
      Neg (parse_unary p)
  | Lexer.Plus ->
      advance p;
      parse_unary p
  | _ -> parse_union_expr p

and parse_union_expr p =
  let left = ref (parse_path p) in
  let rec loop () =
    if cur p = Lexer.Pipe || looking_kw p "union" then begin
      advance p;
      left := Union (!left, parse_path p);
      loop ()
    end
  in
  loop ();
  !left

and parse_path p =
  match cur p with
  | Lexer.Slash ->
      advance p;
      if starts_step p then
        let steps = parse_relative_steps p (parse_step p) in
        Path (Some Root, steps)
      else Root
  | Lexer.Dslash ->
      advance p;
      let first =
        { axis = Descendant_or_self; test = Kind_node; predicates = [] }
      in
      let steps = parse_relative_steps p (parse_step p) in
      Path (Some Root, first :: steps)
  | _ ->
      if starts_axis_step p then
        let steps = parse_relative_steps p (parse_step p) in
        Path (None, steps)
      else begin
        let primary = parse_filter p in
        match cur p with
        | Lexer.Slash ->
            advance p;
            let steps = parse_relative_steps p (parse_step p) in
            Path (Some primary, steps)
        | Lexer.Dslash ->
            advance p;
            let first =
              { axis = Descendant_or_self; test = Kind_node; predicates = [] }
            in
            let steps = parse_relative_steps p (parse_step p) in
            Path (Some primary, first :: steps)
        | _ -> primary
      end

(* After an initial step, collect "/step" and "//step" continuations. *)
and parse_relative_steps p first =
  let steps = ref [ first ] in
  let rec loop () =
    match cur p with
    | Lexer.Slash ->
        advance p;
        steps := parse_step p :: !steps;
        loop ()
    | Lexer.Dslash ->
        advance p;
        steps :=
          { axis = Descendant_or_self; test = Kind_node; predicates = [] }
          :: !steps;
        steps := parse_step p :: !steps;
        loop ()
    | _ -> ()
  in
  loop ();
  List.rev !steps

(* Does the current token begin an axis step (as opposed to a primary)? *)
and starts_axis_step p =
  match cur p with
  | Lexer.At_sign | Lexer.Dotdot | Lexer.Star -> true
  | Lexer.Name ("element" | "attribute" | "text")
    when peek_tok p 1 = Lexer.Lbrace
         || (match (peek_tok p 1, peek_tok p 2) with
            | Lexer.Name _, Lexer.Lbrace -> true
            | _ -> false) ->
      (* computed constructor: a primary expression, not a child step *)
      false
  | Lexer.Name n -> (
      match peek_tok p 1 with
      | Lexer.Coloncolon -> axis_of_name n <> None
      | Lexer.Lparen -> List.mem n kind_test_names
      | _ ->
          (* a bare name is a child step unless it is a reserved-ish keyword
             position; keyword disambiguation: names followed by operators or
             nothing are steps *)
          true)
  | _ -> false

and starts_step p = starts_axis_step p || cur p = Lexer.Dot

and parse_step p =
  match cur p with
  | Lexer.Dot ->
      advance p;
      let predicates = parse_predicates p in
      { axis = Self; test = Kind_node; predicates }
  | Lexer.Dotdot ->
      advance p;
      let predicates = parse_predicates p in
      { axis = Parent; test = Kind_node; predicates }
  | Lexer.At_sign ->
      advance p;
      let test = parse_node_test p in
      let predicates = parse_predicates p in
      { axis = Attribute; test; predicates }
  | Lexer.Name n when peek_tok p 1 = Lexer.Coloncolon -> (
      match axis_of_name n with
      | Some axis ->
          advance p;
          advance p;
          let test = parse_node_test p in
          let predicates = parse_predicates p in
          { axis; test; predicates }
      | None -> error (cur_pos p) "unknown axis '%s'" n)
  | _ ->
      let test = parse_node_test p in
      let predicates = parse_predicates p in
      { axis = Child; test; predicates }

and parse_node_test p =
  match cur p with
  | Lexer.Star ->
      advance p;
      Name_test "*"
  | Lexer.Name n when peek_tok p 1 = Lexer.Lparen && List.mem n kind_test_names
    -> (
      advance p;
      expect p Lexer.Lparen;
      match n with
      | "text" ->
          expect p Lexer.Rparen;
          Kind_text
      | "node" ->
          expect p Lexer.Rparen;
          Kind_node
      | "comment" ->
          expect p Lexer.Rparen;
          Kind_comment
      | "document-node" ->
          expect p Lexer.Rparen;
          Kind_document
      | "element" ->
          if cur p = Lexer.Rparen then begin
            advance p;
            Kind_element None
          end
          else begin
            let name = expect_name p in
            expect p Lexer.Rparen;
            Kind_element (Some name)
          end
      | _ -> assert false)
  | Lexer.Name n ->
      advance p;
      Name_test n
  | t -> error (cur_pos p) "expected a node test, found %s" (Lexer.token_to_string t)

and parse_predicates p =
  let preds = ref [] in
  while cur p = Lexer.Lbracket do
    advance p;
    preds := parse_expr_sequence p :: !preds;
    expect p Lexer.Rbracket
  done;
  List.rev !preds

and parse_filter p =
  let primary = parse_primary p in
  let predicates = parse_predicates p in
  if predicates = [] then primary else Filter (primary, predicates)

and parse_primary p =
  match cur p with
  | Lexer.String_lit s ->
      advance p;
      Literal_string s
  | Lexer.Integer_lit i ->
      advance p;
      Literal_integer i
  | Lexer.Double_lit d ->
      advance p;
      Literal_double d
  | Lexer.Var v ->
      advance p;
      Var v
  | Lexer.Dot ->
      advance p;
      Context_item
  | Lexer.Lparen ->
      advance p;
      if cur p = Lexer.Rparen then begin
        advance p;
        Sequence []
      end
      else begin
        let e = parse_expr_sequence p in
        expect p Lexer.Rparen;
        e
      end
  | Lexer.Xml_blob blob ->
      advance p;
      parse_constructor_blob (cur_pos p) blob
  | Lexer.Name (("element" | "attribute" | "text") as kind)
    when peek_tok p 1 = Lexer.Lbrace
         || (match (peek_tok p 1, peek_tok p 2) with
            | Lexer.Name _, Lexer.Lbrace -> true
            | _ -> false) ->
      parse_computed_constructor p kind
  | Lexer.Name name when peek_tok p 1 = Lexer.Lparen -> parse_call p name
  | t -> error (cur_pos p) "unexpected token %s" (Lexer.token_to_string t)

and parse_computed_constructor p kind =
  advance p;
  (* the keyword *)
  let name_expr =
    match cur p with
    | Lexer.Name n ->
        advance p;
        Literal_string n
    | _ ->
        expect p Lexer.Lbrace;
        let e = parse_expr_sequence p in
        expect p Lexer.Rbrace;
        e
  in
  match kind with
  | "text" ->
      (* text {content} has no name part: what we parsed was the content *)
      Computed_text name_expr
  | _ ->
      expect p Lexer.Lbrace;
      let content =
        if cur p = Lexer.Rbrace then Sequence [] else parse_expr_sequence p
      in
      expect p Lexer.Rbrace;
      if kind = "element" then Computed_element (name_expr, content)
      else Computed_attribute (name_expr, content)

and parse_call p name =
  advance p;
  (* name *)
  expect p Lexer.Lparen;
  if name = "ft:score" then begin
    (* the second-order function: second argument is an FTSelection *)
    let ctx = parse_expr_single p in
    expect p Lexer.Comma;
    let sel = parse_ft_selection p in
    expect p Lexer.Rparen;
    Ft_score (ctx, sel)
  end
  else begin
    let args = ref [] in
    if cur p <> Lexer.Rparen then begin
      args := [ parse_expr_single p ];
      while cur p = Lexer.Comma do
        advance p;
        args := parse_expr_single p :: !args
      done
    end;
    expect p Lexer.Rparen;
    Call (name, List.rev !args)
  end

(* --- direct element constructors --- *)

(* Parse a captured constructor blob: "<name attr="a{expr}b">content</name>".
   Enclosed expressions re-enter the main grammar via a fresh token array. *)
and parse_constructor_blob pos blob =
  let st = ref 0 in
  let n = String.length blob in
  let peek_c k = if !st + k < n then Some blob.[!st + k] else None in
  let fail msg = error pos "in XML constructor: %s" msg in
  let adv () = incr st in
  let skip_ws () =
    while (match peek_c 0 with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false) do
      adv ()
    done
  in
  let parse_blob_name () =
    let start = !st in
    let name_char c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      || c = '_' || c = '-' || c = '.' || c = ':'
    in
    while (match peek_c 0 with Some c when name_char c -> true | _ -> false) do
      adv ()
    done;
    if !st = start then fail "expected a name";
    String.sub blob start (!st - start)
  in
  (* Extract a balanced {...} enclosed expression source. *)
  let read_enclosed () =
    (* at '{' *)
    adv ();
    let start = !st in
    let depth = ref 1 in
    while !depth > 0 do
      match peek_c 0 with
      | None -> fail "unterminated enclosed expression"
      | Some '{' -> incr depth; adv ()
      | Some '}' -> decr depth; if !depth > 0 then adv ()
      | Some (('"' | '\'') as q) ->
          adv ();
          let rec str () =
            match peek_c 0 with
            | None -> fail "unterminated string in enclosed expression"
            | Some c when c = q -> adv ()
            | Some _ -> adv (); str ()
          in
          str ()
      | Some _ -> adv ()
    done;
    let src = String.sub blob start (!st - start) in
    adv ();
    (* closing '}' *)
    parse_sub_expression pos src
  in
  let parse_attr_template q =
    (* attribute value up to closing quote, with {expr} and {{ }} escapes *)
    let parts = ref [] in
    let buf = Buffer.create 16 in
    let flush () =
      if Buffer.length buf > 0 then begin
        parts := Const_text (Buffer.contents buf) :: !parts;
        Buffer.clear buf
      end
    in
    let rec loop () =
      match peek_c 0 with
      | None -> fail "unterminated attribute value"
      | Some c when c = q -> adv ()
      | Some '{' when peek_c 1 = Some '{' ->
          Buffer.add_char buf '{';
          adv (); adv ();
          loop ()
      | Some '}' when peek_c 1 = Some '}' ->
          Buffer.add_char buf '}';
          adv (); adv ();
          loop ()
      | Some '{' ->
          flush ();
          parts := Const_expr (read_enclosed ()) :: !parts;
          loop ()
      | Some c ->
          adv ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    flush ();
    List.rev !parts
  in
  let rec parse_element () =
    (* at '<' *)
    adv ();
    let name = parse_blob_name () in
    let attrs = ref [] in
    let rec attr_loop () =
      skip_ws ();
      match peek_c 0 with
      | Some '/' | Some '>' -> ()
      | Some _ ->
          let aname = parse_blob_name () in
          skip_ws ();
          (match peek_c 0 with
          | Some '=' -> adv ()
          | _ -> fail "expected '=' in attribute");
          skip_ws ();
          (match peek_c 0 with
          | Some (('"' | '\'') as q) ->
              adv ();
              attrs := (aname, parse_attr_template q) :: !attrs
          | _ -> fail "expected a quoted attribute value");
          attr_loop ()
      | None -> fail "unterminated start tag"
    in
    attr_loop ();
    match peek_c 0 with
    | Some '/' ->
        adv ();
        (match peek_c 0 with Some '>' -> adv () | _ -> fail "expected '>'");
        Elem_constructor { name; attrs = List.rev !attrs; content = [] }
    | Some '>' ->
        adv ();
        let content = parse_content name in
        Elem_constructor { name; attrs = List.rev !attrs; content }
    | _ -> fail "expected '>' or '/>'"
  and parse_content element_name =
    let parts = ref [] in
    let buf = Buffer.create 32 in
    let flush () =
      if Buffer.length buf > 0 then begin
        parts := Const_text (Buffer.contents buf) :: !parts;
        Buffer.clear buf
      end
    in
    let rec loop () =
      match peek_c 0 with
      | None -> fail "unterminated element content"
      | Some '<' when peek_c 1 = Some '/' ->
          flush ();
          adv (); adv ();
          let close = parse_blob_name () in
          if close <> element_name then
            fail (Printf.sprintf "mismatched </%s> for <%s>" close element_name);
          skip_ws ();
          (match peek_c 0 with Some '>' -> adv () | _ -> fail "expected '>'")
      | Some '<' ->
          flush ();
          parts := Const_expr (parse_element ()) :: !parts;
          loop ()
      | Some '{' when peek_c 1 = Some '{' ->
          Buffer.add_char buf '{';
          adv (); adv ();
          loop ()
      | Some '}' when peek_c 1 = Some '}' ->
          Buffer.add_char buf '}';
          adv (); adv ();
          loop ()
      | Some '{' ->
          flush ();
          parts := Const_expr (read_enclosed ()) :: !parts;
          loop ()
      | Some c ->
          adv ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    flush ();
    List.rev !parts
  in
  skip_ws ();
  match peek_c 0 with
  | Some '<' -> parse_element ()
  | _ -> fail "expected '<'"

and parse_sub_expression pos src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { msg; _ } -> error pos "in enclosed expression: %s" msg
  in
  let sub = { toks; i = 0 } in
  let e = parse_expr_sequence sub in
  if cur sub <> Lexer.Eof then
    error pos "trailing tokens in enclosed expression near %s"
      (Lexer.token_to_string (cur sub));
  e

(* --- full-text selections --- *)

and parse_ft_selection p =
  let sel = ref (parse_ft_or p) in
  (* postfix position filters and scoped match options *)
  let rec loop () =
    if looking_kw p "ordered" then begin
      advance p;
      sel := Ft_ordered !sel;
      loop ()
    end
    else if looking_kw p "window" then begin
      advance p;
      let size = parse_additive p in
      let unit_ = parse_ft_unit p in
      sel := Ft_window (!sel, size, unit_);
      loop ()
    end
    else if
      looking_kw p "with" && peek_tok p 1 = Lexer.Name "distance"
    then begin
      advance p;
      loop ()
    end
    else if looking_kw p "distance" then begin
      advance p;
      let range = parse_ft_range p in
      let unit_ = parse_ft_unit p in
      sel := Ft_distance (!sel, range, unit_);
      loop ()
    end
    else if looking_kw p "same" then begin
      advance p;
      let kind =
        if accept_kw p "sentence" then Same_sentence
        else begin
          expect_kw p "paragraph";
          Same_paragraph
        end
      in
      sel := Ft_scope (!sel, kind);
      loop ()
    end
    else if looking_kw p "different" then begin
      advance p;
      let kind =
        if accept_kw p "sentence" then Different_sentence
        else begin
          expect_kw p "paragraph";
          Different_paragraph
        end
      in
      sel := Ft_scope (!sel, kind);
      loop ()
    end
    else if looking_kw p "occurs" then begin
      advance p;
      let range = parse_ft_range p in
      expect_kw p "times";
      sel := Ft_times (!sel, range);
      loop ()
    end
    else if looking_kw p "at" && peek_tok p 1 = Lexer.Name "start" then begin
      advance p;
      advance p;
      sel := Ft_content (!sel, At_start);
      loop ()
    end
    else if looking_kw p "at" && peek_tok p 1 = Lexer.Name "end" then begin
      advance p;
      advance p;
      sel := Ft_content (!sel, At_end);
      loop ()
    end
    else if looking_kw p "entire" && peek_tok p 1 = Lexer.Name "content" then begin
      advance p;
      advance p;
      sel := Ft_content (!sel, Entire_content);
      loop ()
    end
    else begin
      match parse_ft_match_options p with
      | [] -> ()
      | opts ->
          sel := Ft_with_options (!sel, opts);
          loop ()
    end
  in
  loop ();
  !sel

and parse_ft_unit p =
  if accept_kw p "words" then Words
  else if accept_kw p "sentences" then Sentences
  else if accept_kw p "paragraphs" then Paragraphs
  else Words

and parse_ft_range p =
  if accept_kw p "exactly" then Exactly (parse_additive p)
  else if looking_kw p "at" && peek_tok p 1 = Lexer.Name "least" then begin
    advance p;
    advance p;
    At_least (parse_additive p)
  end
  else if looking_kw p "at" && peek_tok p 1 = Lexer.Name "most" then begin
    advance p;
    advance p;
    At_most (parse_additive p)
  end
  else if accept_kw p "from" then begin
    let lo = parse_additive p in
    expect_kw p "to";
    From_to (lo, parse_additive p)
  end
  else error (cur_pos p) "expected a range (exactly / at least / at most / from-to)"

and parse_ft_or p =
  let left = parse_ft_and p in
  if cur p = Lexer.Dpipe || looking_kw p "ftor" then begin
    advance p;
    Ft_or (left, parse_ft_or p)
  end
  else left

and parse_ft_and p =
  let left = parse_ft_mild_not p in
  if cur p = Lexer.Ampamp || looking_kw p "ftand" then begin
    advance p;
    Ft_and (left, parse_ft_and p)
  end
  else left

and parse_ft_mild_not p =
  let left = ref (parse_ft_unary_not p) in
  while looking_kw p "not" && peek_tok p 1 = Lexer.Name "in" do
    advance p;
    advance p;
    left := Ft_mild_not (!left, parse_ft_unary_not p)
  done;
  !left

and parse_ft_unary_not p =
  if cur p = Lexer.Bang || looking_kw p "ftnot" then begin
    advance p;
    Ft_unary_not (parse_ft_unary_not p)
  end
  else parse_ft_primary p

and parse_ft_primary p =
  let base =
    match cur p with
    | Lexer.String_lit s ->
        advance p;
        let anyall = parse_ft_anyall p in
        Ft_words { source = Ft_literal s; anyall; options = []; weight = None }
    | Lexer.Var v ->
        advance p;
        let anyall = parse_ft_anyall p in
        Ft_words { source = Ft_expr (Var v); anyall; options = []; weight = None }
    | Lexer.Lbrace ->
        (* enclosed expression as a word source *)
        advance p;
        let e = parse_expr_sequence p in
        expect p Lexer.Rbrace;
        let anyall = parse_ft_anyall p in
        Ft_words { source = Ft_expr e; anyall; options = []; weight = None }
    | Lexer.Lparen -> parse_ft_paren p
    | t ->
        error (cur_pos p) "expected a full-text primary, found %s"
          (Lexer.token_to_string t)
  in
  (* postfix match options and weight bind to the primary *)
  let with_options sel =
    match parse_ft_match_options p with
    | [] -> sel
    | opts -> (
        match sel with
        | Ft_words w -> Ft_words { w with options = w.options @ opts }
        | other -> Ft_with_options (other, opts))
  in
  let sel = with_options base in
  if looking_kw p "weight" then begin
    advance p;
    let w = parse_additive p in
    match sel with
    | Ft_words words -> Ft_words { words with weight = Some w }
    | other -> other
    (* weight on a non-words selection: tolerated, ignored *)
  end
  else sel

(* "(": either a parenthesized FTSelection or an embedded XQuery expression
   word source (paper Section 3.2.2, disambiguation token #3). *)
and parse_ft_paren p =
  let save = p.i in
  let as_selection =
    try
      advance p;
      let sel = parse_ft_selection p in
      expect p Lexer.Rparen;
      (* if an any/all keyword follows, this was an expression source *)
      match cur p with
      | Lexer.Name ("any" | "all" | "phrase") -> None
      | _ -> Some sel
    with Error _ -> None
  in
  match as_selection with
  | Some sel -> sel
  | None ->
      p.i <- save;
      advance p;
      let e = parse_expr_sequence p in
      expect p Lexer.Rparen;
      let anyall = parse_ft_anyall p in
      Ft_words { source = Ft_expr e; anyall; options = []; weight = None }

and parse_ft_anyall p =
  if looking_kw p "any" then begin
    advance p;
    if accept_kw p "word" then Ft_any_word else Ft_any
  end
  else if looking_kw p "all" then begin
    advance p;
    if accept_kw p "words" then Ft_all_words else Ft_all
  end
  else if accept_kw p "phrase" then Ft_phrase
  else Ft_any

and parse_ft_match_options p =
  let opts = ref [] in
  let push o = opts := o :: !opts in
  let rec loop () =
    if looking_kw p "case" then begin
      advance p;
      if accept_kw p "sensitive" then push (Opt_case Case_sensitive)
      else begin
        expect_kw p "insensitive";
        push (Opt_case Case_insensitive)
      end;
      loop ()
    end
    else if accept_kw p "lowercase" then begin
      push (Opt_case Case_lower);
      loop ()
    end
    else if accept_kw p "uppercase" then begin
      push (Opt_case Case_upper);
      loop ()
    end
    else if looking_kw p "diacritics" then begin
      advance p;
      if accept_kw p "sensitive" then push (Opt_diacritics true)
      else begin
        expect_kw p "insensitive";
        push (Opt_diacritics false)
      end;
      loop ()
    end
    else if looking_kw p "language" then begin
      advance p;
      push (Opt_language (expect_string p));
      loop ()
    end
    else if
      looking_kw p "with"
      && (match peek_tok p 1 with
         | Lexer.Name
             ( "stemming" | "wildcards" | "regular" | "special" | "stop"
             | "stopwords" | "thesaurus" | "default" ) ->
             true
         | _ -> false)
    then begin
      advance p;
      if accept_kw p "stemming" then push (Opt_stemming true)
      else if accept_kw p "wildcards" then push (Opt_wildcards true)
      else if accept_kw p "regular" then begin
        expect_kw p "expressions";
        push (Opt_wildcards true)
      end
      else if accept_kw p "special" then begin
        expect_kw p "characters";
        push (Opt_special_chars true)
      end
      else if accept_kw p "stopwords" then push (Opt_stop_words (Some (parse_stop_arg p)))
      else if accept_kw p "stop" then begin
        expect_kw p "words";
        push (Opt_stop_words (Some (parse_stop_arg p)))
      end
      else if accept_kw p "default" then begin
        expect_kw p "stop";
        expect_kw p "words";
        push (Opt_stop_words (Some Stop_default))
      end
      else begin
        expect_kw p "thesaurus";
        let th_name =
          if accept_kw p "default" then None
          else if looking_kw p "at" && (match peek_tok p 1 with Lexer.String_lit _ -> true | _ -> false)
          then begin
            advance p;
            Some (expect_string p)
          end
          else
            match cur p with
            | Lexer.String_lit s ->
                advance p;
                Some s
            | _ -> None
        in
        let th_relationship =
          if accept_kw p "relationship" then Some (expect_string p) else None
        in
        let th_levels =
          if looking_kw p "at" && peek_tok p 1 = Lexer.Name "most" then begin
            advance p;
            advance p;
            match cur p with
            | Lexer.Integer_lit n ->
                advance p;
                expect_kw p "levels";
                Some n
            | _ -> error (cur_pos p) "expected a level count"
          end
          else if accept_kw p "exactly" then begin
            match cur p with
            | Lexer.Integer_lit n ->
                advance p;
                expect_kw p "levels";
                Some n
            | _ -> error (cur_pos p) "expected a level count"
          end
          else None
        in
        push (Opt_thesaurus (Some { th_name; th_relationship; th_levels }))
      end;
      loop ()
    end
    else if
      looking_kw p "without"
      && (match peek_tok p 1 with
         | Lexer.Name
             ( "stemming" | "wildcards" | "regular" | "special" | "stop"
             | "stopwords" | "thesaurus" ) ->
             true
         | _ -> false)
    then begin
      advance p;
      if accept_kw p "stemming" then push (Opt_stemming false)
      else if accept_kw p "wildcards" then push (Opt_wildcards false)
      else if accept_kw p "regular" then begin
        expect_kw p "expressions";
        push (Opt_wildcards false)
      end
      else if accept_kw p "special" then begin
        expect_kw p "characters";
        push (Opt_special_chars false)
      end
      else if accept_kw p "stopwords" then push (Opt_stop_words None)
      else if accept_kw p "stop" then begin
        expect_kw p "words";
        push (Opt_stop_words None)
      end
      else begin
        expect_kw p "thesaurus";
        push (Opt_thesaurus None)
      end;
      loop ()
    end
  in
  loop ();
  List.rev !opts

and parse_stop_arg p =
  if cur p = Lexer.Lparen then begin
    advance p;
    let words = ref [ expect_string p ] in
    while cur p = Lexer.Comma do
      advance p;
      words := expect_string p :: !words
    done;
    expect p Lexer.Rparen;
    Stop_list (List.rev !words)
  end
  else begin
    ignore (accept_kw p "default");
    Stop_default
  end

(* --- prolog and entry points --- *)

let skip_to_semicolon p =
  while cur p <> Lexer.Semicolon && cur p <> Lexer.Eof do
    advance p
  done;
  expect p Lexer.Semicolon

let parse_prolog p =
  let functions = ref [] in
  let variables = ref [] in
  let rec loop () =
    if looking_kw p "declare" then begin
      advance p;
      if accept_kw p "function" then begin
        let fname = expect_name p in
        expect p Lexer.Lparen;
        let params = ref [] in
        if cur p <> Lexer.Rparen then begin
          let rec param_loop () =
            let v = expect_var p in
            if accept_kw p "as" then skip_sequence_type p;
            params := v :: !params;
            if cur p = Lexer.Comma then begin
              advance p;
              param_loop ()
            end
          in
          param_loop ()
        end;
        expect p Lexer.Rparen;
        if accept_kw p "as" then skip_sequence_type p;
        expect p Lexer.Lbrace;
        let body = parse_expr_sequence p in
        expect p Lexer.Rbrace;
        expect p Lexer.Semicolon;
        functions := { fname; params = List.rev !params; body } :: !functions
      end
      else if accept_kw p "variable" then begin
        let v = expect_var p in
        if accept_kw p "as" then skip_sequence_type p;
        expect p Lexer.Assign;
        let e = parse_expr_single p in
        expect p Lexer.Semicolon;
        variables := (v, e) :: !variables
      end
      else
        (* declare namespace / boundary-space / default ... : parsed and
           discarded *)
        skip_to_semicolon p;
      loop ()
    end
    else if looking_kw p "import" then begin
      skip_to_semicolon p;
      loop ()
    end
  in
  loop ();
  (List.rev !functions, List.rev !variables)

let parse_query src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { pos; msg } -> raise (Error { pos; msg })
  in
  let p = { toks; i = 0 } in
  let functions, variables = parse_prolog p in
  let body = parse_expr_sequence p in
  if cur p <> Lexer.Eof then
    error (cur_pos p) "unexpected trailing token %s" (Lexer.token_to_string (cur p));
  { functions; variables; body }

let parse_expression src =
  let q = parse_query src in
  if q.functions <> [] || q.variables <> [] then
    error 0 "unexpected prolog in expression";
  q.body

(* Parse a module: only declarations, no body (the GalaTex fts library is
   loaded this way). *)
let parse_module src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { pos; msg } -> raise (Error { pos; msg })
  in
  let p = { toks; i = 0 } in
  (* tolerate a "module namespace fts = '...';" header *)
  if looking_kw p "module" then skip_to_semicolon p;
  let functions, variables = parse_prolog p in
  if cur p <> Lexer.Eof then
    error (cur_pos p) "unexpected token %s in module" (Lexer.token_to_string (cur p));
  { functions; variables; body = Sequence [] }
