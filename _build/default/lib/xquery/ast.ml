(* Abstract syntax for the combined XQuery + Full-Text grammar.  The XQuery
   expression language and the FTSelection language are mutually recursive
   (a full-text selection can embed an XQuery expression as its word source,
   and ftcontains is a first-class XQuery expression — paper Section 3.2.2),
   so both live here. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Attribute
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding

type node_test =
  | Name_test of string  (** element/attribute name, "*" for any *)
  | Kind_text
  | Kind_node
  | Kind_comment
  | Kind_element of string option
  | Kind_document

type comparison_op = Eq | Ne | Lt | Le | Gt | Ge
type arith_op = Add | Sub | Mul | Div | Idiv | Mod

(* --- full-text selections (paper Section 2.1) --- *)

type ft_range =
  | Exactly of expr
  | At_least of expr
  | At_most of expr
  | From_to of expr * expr

and ft_unit = Words | Sentences | Paragraphs

and ft_scope_kind =
  | Same_sentence
  | Same_paragraph
  | Different_sentence
  | Different_paragraph

and ft_anchor = At_start | At_end | Entire_content

and ft_case = Case_insensitive | Case_sensitive | Case_lower | Case_upper

and ft_stop_words =
  | Stop_default  (** "with default stop words" *)
  | Stop_list of string list  (** explicit parenthesized list *)

and ft_match_option =
  | Opt_case of ft_case
  | Opt_diacritics of bool  (** true = sensitive *)
  | Opt_stemming of bool
  | Opt_wildcards of bool  (** "with wildcards" / regular expressions *)
  | Opt_special_chars of bool
  | Opt_stop_words of ft_stop_words option  (** None = without stop words *)
  | Opt_thesaurus of ft_thesaurus option
      (** None = "without thesaurus"; Some spec = "with thesaurus ..." *)
  | Opt_language of string

and ft_thesaurus = {
  th_name : string option;  (** None = the default thesaurus *)
  th_relationship : string option;  (** e.g. "synonym", "broader term" *)
  th_levels : int option;  (** "at most N levels" *)
}

and ft_anyall = Ft_any | Ft_all | Ft_phrase | Ft_any_word | Ft_all_words

and ft_words_source =
  | Ft_literal of string
  | Ft_expr of expr  (** embedded XQuery expression producing search strings *)

and ft_selection =
  | Ft_words of {
      source : ft_words_source;
      anyall : ft_anyall;
      options : ft_match_option list;
      weight : expr option;
    }
  | Ft_and of ft_selection * ft_selection
  | Ft_or of ft_selection * ft_selection
  | Ft_mild_not of ft_selection * ft_selection  (** "not in" *)
  | Ft_unary_not of ft_selection
  | Ft_ordered of ft_selection
  | Ft_window of ft_selection * expr * ft_unit
  | Ft_distance of ft_selection * ft_range * ft_unit
  | Ft_scope of ft_selection * ft_scope_kind
  | Ft_times of ft_selection * ft_range
  | Ft_content of ft_selection * ft_anchor
  | Ft_with_options of ft_selection * ft_match_option list
      (** match options scoped over a whole sub-selection, to be propagated
          down to the Ft_words leaves (paper Section 3.2.2) *)

(* --- XQuery expressions --- *)

and step = { axis : axis; test : node_test; predicates : expr list }

and flwor_clause =
  | For_clause of { var : string; positional : string option; source : expr }
  | Let_clause of { var : string; value : expr }
  | Where_clause of expr
  | Order_by of (expr * bool) list  (** true = descending *)

and quantifier = Some_q | Every_q

and constructor_content =
  | Const_text of string
  | Const_expr of expr  (** enclosed { expr } *)

and expr =
  | Literal_string of string
  | Literal_integer of int
  | Literal_double of float
  | Var of string
  | Context_item
  | Sequence of expr list  (** comma operator; [] is the empty sequence () *)
  | Range of expr * expr  (** "1 to 10" *)
  | If of expr * expr * expr
  | Flwor of flwor_clause list * expr
  | Quantified of quantifier * (string * expr) list * expr
  | Or of expr * expr
  | And of expr * expr
  | General_cmp of comparison_op * expr * expr  (** = != < <= > >= *)
  | Value_cmp of comparison_op * expr * expr  (** eq ne lt le gt ge *)
  | Node_is of expr * expr
  | Arith of arith_op * expr * expr
  | Neg of expr
  | Union of expr * expr
  | Path of expr option * step list
      (** None root = relative path (steps start from the context item);
          Some e = path rooted at e; the distinguished expr Root means "/" *)
  | Root  (** leading "/" : the document root of the context node *)
  | Filter of expr * expr list  (** primary expression with predicates *)
  | Call of string * expr list
  | Elem_constructor of {
      name : string;
      attrs : (string * constructor_content list) list;
      content : constructor_content list;
    }
  | Computed_element of expr * expr
      (** [element {name-expr} {content-expr}]; a literal name is a string
          literal *)
  | Computed_attribute of expr * expr
  | Computed_text of expr
  | Ft_contains of {
      context : expr;
      selection : ft_selection;
      ignore_nodes : expr option;  (** "without content Expr" *)
    }
  | Ft_score of expr * ft_selection
      (** ft:score($ctx, FTSelectionWithWeights) — the language's only
          second-order function (paper Section 2.2) *)

type function_def = {
  fname : string;
  params : string list;
  body : expr;
}

(* A parsed query: prolog function/variable declarations plus the body. *)
type query = {
  functions : function_def list;
  variables : (string * expr) list;
  body : expr;
}

let query ?(functions = []) ?(variables = []) body =
  { functions; variables; body }

(* Smart constructor used by the parser: a path with no steps is just its
   root expression. *)
let path root steps =
  match (root, steps) with
  | Some e, [] -> e
  | _ -> Path (root, steps)

(* Default match options (paper Section 3.1.4): case insensitive, without
   special characters, without wildcards, without stemming, without stop
   words, English, without thesaurus, diacritics insensitive. *)
let default_match_options =
  [
    Opt_case Case_insensitive;
    Opt_diacritics false;
    Opt_stemming false;
    Opt_wildcards false;
    Opt_special_chars false;
    Opt_stop_words None;
    Opt_thesaurus None;
    Opt_language "en";
  ]
