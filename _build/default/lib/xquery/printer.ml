open Ast

(* Pretty-printer for the combined AST.  Its main job is showing users the
   XQuery text the GalaTex translation produces (paper Section 3.2.2 prints
   exactly such queries); it also round-trips through the parser for the
   expression forms the translator emits, which tests exercise. *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Attribute -> "attribute"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"

let node_test_string = function
  | Name_test n -> n
  | Kind_text -> "text()"
  | Kind_node -> "node()"
  | Kind_comment -> "comment()"
  | Kind_element None -> "element()"
  | Kind_element (Some n) -> Printf.sprintf "element(%s)" n
  | Kind_document -> "document-node()"

let general_op = function
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let value_op = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let arith_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Idiv -> "idiv"
  | Mod -> "mod"

let ft_unit_name = function
  | Words -> "words"
  | Sentences -> "sentences"
  | Paragraphs -> "paragraphs"

let rec expr_to_string e =
  let s = expr_to_string in
  match e with
  | Literal_string str -> Printf.sprintf "\"%s\"" (escape_string str)
  | Literal_integer i -> string_of_int i
  | Literal_double d -> Printf.sprintf "%g" d
  | Var v -> "$" ^ v
  | Context_item -> "."
  | Sequence [] -> "()"
  | Sequence es -> "(" ^ String.concat ", " (List.map s es) ^ ")"
  | Range (a, b) -> Printf.sprintf "(%s to %s)" (s a) (s b)
  | If (c, t, f) -> Printf.sprintf "if (%s) then %s else %s" (s c) (s t) (s f)
  | Flwor (clauses, body) ->
      let clause = function
        | For_clause { var; positional = None; source } ->
            Printf.sprintf "for $%s in %s" var (s source)
        | For_clause { var; positional = Some p; source } ->
            Printf.sprintf "for $%s at $%s in %s" var p (s source)
        | Let_clause { var; value } -> Printf.sprintf "let $%s := %s" var (s value)
        | Where_clause w -> "where " ^ s w
        | Order_by keys ->
            "order by "
            ^ String.concat ", "
                (List.map
                   (fun (k, desc) -> s k ^ if desc then " descending" else " ascending")
                   keys)
      in
      String.concat " " (List.map clause clauses) ^ " return " ^ s body
  | Quantified (q, bindings, cond) ->
      Printf.sprintf "%s %s satisfies %s"
        (match q with Some_q -> "some" | Every_q -> "every")
        (String.concat ", "
           (List.map (fun (v, src) -> Printf.sprintf "$%s in %s" v (s src)) bindings))
        (s cond)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (s a) (s b)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (s a) (s b)
  | General_cmp (op, a, b) -> Printf.sprintf "%s %s %s" (s a) (general_op op) (s b)
  | Value_cmp (op, a, b) -> Printf.sprintf "%s %s %s" (s a) (value_op op) (s b)
  | Node_is (a, b) -> Printf.sprintf "%s is %s" (s a) (s b)
  | Arith (op, a, b) -> Printf.sprintf "(%s %s %s)" (s a) (arith_name op) (s b)
  | Neg a -> "-" ^ s a
  | Union (a, b) -> Printf.sprintf "(%s | %s)" (s a) (s b)
  | Root -> "/"
  | Path (root, steps) ->
      let step_str (st : step) =
        let base =
          match (st.axis, st.test) with
          | Child, test -> node_test_string test
          | Attribute, Name_test n -> "@" ^ n
          | Descendant_or_self, Kind_node -> "descendant-or-self::node()"
          | Self, Kind_node -> "."
          | Parent, Kind_node -> ".."
          | axis, test -> axis_name axis ^ "::" ^ node_test_string test
        in
        base
        ^ String.concat ""
            (List.map (fun p -> "[" ^ s p ^ "]") st.predicates)
      in
      let steps_str = String.concat "/" (List.map step_str steps) in
      (match root with
      | None -> steps_str
      | Some Root -> "/" ^ steps_str
      | Some e -> s e ^ "/" ^ steps_str)
  | Filter (primary, preds) ->
      s primary ^ String.concat "" (List.map (fun p -> "[" ^ s p ^ "]") preds)
  | Call (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map s args))
  | Elem_constructor { name; attrs; content } ->
      let content_str parts =
        String.concat ""
          (List.map
             (function
               | Const_text t -> t
               | Const_expr e -> "{" ^ s e ^ "}")
             parts)
      in
      let attrs_str =
        String.concat ""
          (List.map
             (fun (n, parts) -> Printf.sprintf " %s=\"%s\"" n (content_str parts))
             attrs)
      in
      if content = [] then Printf.sprintf "<%s%s/>" name attrs_str
      else Printf.sprintf "<%s%s>%s</%s>" name attrs_str (content_str content) name
  | Computed_element (n, c) ->
      Printf.sprintf "element {%s} {%s}" (s n) (s c)
  | Computed_attribute (n, c) ->
      Printf.sprintf "attribute {%s} {%s}" (s n) (s c)
  | Computed_text c -> Printf.sprintf "text {%s}" (s c)
  | Ft_contains { context; selection; ignore_nodes } ->
      Printf.sprintf "%s ftcontains %s%s" (s context)
        (selection_to_string selection)
        (match ignore_nodes with
        | None -> ""
        | Some e -> " without content " ^ s e)
  | Ft_score (context, selection) ->
      Printf.sprintf "ft:score(%s, %s)" (s context) (selection_to_string selection)

and selection_to_string sel =
  let s = selection_to_string in
  let e = expr_to_string in
  match sel with
  | Ft_words { source; anyall; options; weight } ->
      let src =
        match source with
        | Ft_literal str -> Printf.sprintf "\"%s\"" (escape_string str)
        | Ft_expr ex -> "(" ^ e ex ^ ")"
      in
      let anyall_str =
        match anyall with
        | Ft_any -> ""
        | Ft_all -> " all"
        | Ft_phrase -> " phrase"
        | Ft_any_word -> " any word"
        | Ft_all_words -> " all words"
      in
      let opts = String.concat "" (List.map option_to_string options) in
      let w = match weight with None -> "" | Some ex -> " weight " ^ e ex in
      src ^ anyall_str ^ opts ^ w
  | Ft_and (a, b) -> Printf.sprintf "(%s && %s)" (s a) (s b)
  | Ft_or (a, b) -> Printf.sprintf "(%s || %s)" (s a) (s b)
  | Ft_mild_not (a, b) -> Printf.sprintf "(%s not in %s)" (s a) (s b)
  | Ft_unary_not a -> "! " ^ s a
  (* position filters bind at selection level, so a filtered selection used
     as an operand must be parenthesized to reparse *)
  | Ft_ordered a -> Printf.sprintf "(%s ordered)" (s a)
  | Ft_window (a, n, u) ->
      Printf.sprintf "(%s window %s %s)" (s a) (e n) (ft_unit_name u)
  | Ft_distance (a, range, u) ->
      Printf.sprintf "(%s distance %s %s)" (s a) (range_to_string range)
        (ft_unit_name u)
  | Ft_scope (a, kind) ->
      let k =
        match kind with
        | Same_sentence -> "same sentence"
        | Same_paragraph -> "same paragraph"
        | Different_sentence -> "different sentence"
        | Different_paragraph -> "different paragraph"
      in
      Printf.sprintf "(%s %s)" (s a) k
  | Ft_times (a, range) ->
      Printf.sprintf "(%s occurs %s times)" (s a) (range_to_string range)
  | Ft_content (a, anchor) ->
      let k =
        match anchor with
        | At_start -> "at start"
        | At_end -> "at end"
        | Entire_content -> "entire content"
      in
      Printf.sprintf "(%s %s)" (s a) k
  | Ft_with_options (a, options) ->
      "(" ^ s a ^ ")" ^ String.concat "" (List.map option_to_string options)

and range_to_string = function
  | Exactly e -> "exactly " ^ expr_to_string e
  | At_least e -> "at least " ^ expr_to_string e
  | At_most e -> "at most " ^ expr_to_string e
  | From_to (lo, hi) ->
      Printf.sprintf "from %s to %s" (expr_to_string lo) (expr_to_string hi)

and option_to_string = function
  | Opt_case Case_insensitive -> " case insensitive"
  | Opt_case Case_sensitive -> " case sensitive"
  | Opt_case Case_lower -> " lowercase"
  | Opt_case Case_upper -> " uppercase"
  | Opt_diacritics true -> " diacritics sensitive"
  | Opt_diacritics false -> " diacritics insensitive"
  | Opt_stemming true -> " with stemming"
  | Opt_stemming false -> " without stemming"
  | Opt_wildcards true -> " with wildcards"
  | Opt_wildcards false -> " without wildcards"
  | Opt_special_chars true -> " with special characters"
  | Opt_special_chars false -> " without special characters"
  | Opt_stop_words None -> " without stop words"
  | Opt_stop_words (Some Stop_default) -> " with default stop words"
  | Opt_stop_words (Some (Stop_list ws)) ->
      Printf.sprintf " with stop words (%s)"
        (String.concat ", " (List.map (Printf.sprintf "\"%s\"") ws))
  | Opt_thesaurus None -> " without thesaurus"
  | Opt_thesaurus (Some { th_name; th_relationship; th_levels }) ->
      " with thesaurus "
      ^ (match th_name with None -> "default" | Some n -> Printf.sprintf "\"%s\"" n)
      ^ (match th_relationship with
        | None -> ""
        | Some r -> Printf.sprintf " relationship \"%s\"" r)
      ^ (match th_levels with
        | None -> ""
        | Some n -> Printf.sprintf " at most %d levels" n)
  | Opt_language l -> Printf.sprintf " language \"%s\"" l

let query_to_string (q : query) =
  let funs =
    List.map
      (fun f ->
        Printf.sprintf "declare function %s(%s) { %s };" f.fname
          (String.concat ", " (List.map (fun p -> "$" ^ p) f.params))
          (expr_to_string f.body))
      q.functions
  in
  let vars =
    List.map
      (fun (v, e) ->
        Printf.sprintf "declare variable $%s := %s;" v (expr_to_string e))
      q.variables
  in
  String.concat "\n" (funs @ vars @ [ expr_to_string q.body ])
