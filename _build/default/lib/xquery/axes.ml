open Xmlkit

(* XPath axes over the xmlkit node tree.  Each axis returns nodes in the
   order the XPath data model specifies (forward axes in document order,
   reverse axes in reverse document order); the path evaluator re-sorts and
   deduplicates the union of step results anyway. *)

let child n = Node.children n
let descendant n = Node.descendants n
let descendant_or_self n = Node.descendants_or_self n
let self n = [ n ]
let attribute n = Node.attributes n
let parent n = match Node.parent n with Some p -> [ p ] | None -> []

let rec ancestor n =
  match Node.parent n with Some p -> p :: ancestor p | None -> []

let ancestor_or_self n = n :: ancestor n

let siblings_of n =
  match Node.parent n with Some p -> Node.children p | None -> []

let following_sibling n =
  let rec after = function
    | [] -> []
    | x :: rest -> if Node.equal x n then rest else after rest
  in
  after (siblings_of n)

let preceding_sibling n =
  let rec before acc = function
    | [] -> []
    | x :: rest -> if Node.equal x n then acc else before (x :: acc) rest
  in
  before [] (siblings_of n)

(* following: all nodes after n in document order, excluding descendants. *)
let following n =
  List.concat_map Node.descendants_or_self
    (List.concat_map following_sibling (ancestor_or_self n))
  |> List.sort Node.compare_order

let preceding n =
  let ancestors = ancestor n in
  List.concat_map Node.descendants_or_self
    (List.concat_map preceding_sibling (ancestor_or_self n))
  |> List.filter (fun m -> not (List.exists (Node.equal m) ancestors))
  |> List.sort Node.compare_order

let apply (axis : Ast.axis) n =
  match axis with
  | Ast.Child -> child n
  | Ast.Descendant -> descendant n
  | Ast.Descendant_or_self -> descendant_or_self n
  | Ast.Self -> self n
  | Ast.Attribute -> attribute n
  | Ast.Parent -> parent n
  | Ast.Ancestor -> ancestor n
  | Ast.Ancestor_or_self -> ancestor_or_self n
  | Ast.Following_sibling -> following_sibling n
  | Ast.Preceding_sibling -> preceding_sibling n
  | Ast.Following -> following n
  | Ast.Preceding -> preceding n

let node_test (test : Ast.node_test) n =
  match test with
  | Ast.Name_test "*" -> Node.is_element n || Node.is_attribute n
  | Ast.Name_test name -> Node.name n = Some name && not (Node.is_document n)
  | Ast.Kind_text -> Node.is_text n
  | Ast.Kind_node -> true
  | Ast.Kind_comment -> (
      match Node.kind n with Node.Comment _ -> true | _ -> false)
  | Ast.Kind_element None -> Node.is_element n
  | Ast.Kind_element (Some name) ->
      Node.is_element n && Node.name n = Some name
  | Ast.Kind_document -> Node.is_document n

let step_nodes axis test n =
  List.filter (node_test test) (apply axis n)
