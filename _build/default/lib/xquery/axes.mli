(** XPath axes over the xmlkit node tree. *)

val apply : Ast.axis -> Xmlkit.Node.t -> Xmlkit.Node.t list
(** Nodes on the axis from a context node, forward axes in document order,
    reverse axes nearest-first. *)

val node_test : Ast.node_test -> Xmlkit.Node.t -> bool

val step_nodes : Ast.axis -> Ast.node_test -> Xmlkit.Node.t -> Xmlkit.Node.t list
(** [apply] filtered by the node test (predicates are the evaluator's
    job). *)

(** Individual axes, exposed for tests. *)

val child : Xmlkit.Node.t -> Xmlkit.Node.t list
val descendant : Xmlkit.Node.t -> Xmlkit.Node.t list
val descendant_or_self : Xmlkit.Node.t -> Xmlkit.Node.t list
val self : Xmlkit.Node.t -> Xmlkit.Node.t list
val attribute : Xmlkit.Node.t -> Xmlkit.Node.t list
val parent : Xmlkit.Node.t -> Xmlkit.Node.t list
val ancestor : Xmlkit.Node.t -> Xmlkit.Node.t list
val ancestor_or_self : Xmlkit.Node.t -> Xmlkit.Node.t list
val following_sibling : Xmlkit.Node.t -> Xmlkit.Node.t list
val preceding_sibling : Xmlkit.Node.t -> Xmlkit.Node.t list
val following : Xmlkit.Node.t -> Xmlkit.Node.t list
val preceding : Xmlkit.Node.t -> Xmlkit.Node.t list
