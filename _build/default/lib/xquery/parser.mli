(** Recursive-descent parser for the combined XQuery + Full-Text grammar
    (paper Section 3.2.2): the two languages nest arbitrarily; the
    "(" ambiguity between a parenthesized FTSelection and an embedded XQuery
    expression is resolved by limited-lookahead backtracking, as the paper
    describes. *)

exception Error of { pos : int; msg : string }

val parse_query : string -> Ast.query
(** Parse a full query: prolog (declare function / variable / namespace,
    import) followed by the body expression.
    @raise Error on syntax errors (position is a source offset). *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (no prolog allowed). *)

val parse_module : string -> Ast.query
(** Parse a library module: an optional [module namespace ...] header and
    declarations only; the returned body is the empty sequence.  Used to
    load the GalaTex fts module. *)
