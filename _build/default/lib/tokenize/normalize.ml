(* Word normalization for the FTMatchOptions that operate "at the level of
   individual words" (Section 3.1.4): case folding and diacritics removal.
   Diacritic stripping maps Latin-1 Supplement and Latin Extended-A code
   points to their base ASCII letters; other characters pass through. *)

let lowercase_ascii = String.lowercase_ascii

(* Map a Unicode code point carrying a diacritic to its base letter(s). *)
let strip_diacritic_uchar u =
  match Uchar.to_int u with
  | c when c >= 0xC0 && c <= 0xC5 -> Some "A"
  | 0xC6 -> Some "AE"
  | 0xC7 -> Some "C"
  | c when c >= 0xC8 && c <= 0xCB -> Some "E"
  | c when c >= 0xCC && c <= 0xCF -> Some "I"
  | 0xD0 -> Some "D"
  | 0xD1 -> Some "N"
  | c when (c >= 0xD2 && c <= 0xD6) || c = 0xD8 -> Some "O"
  | c when c >= 0xD9 && c <= 0xDC -> Some "U"
  | 0xDD -> Some "Y"
  | 0xDF -> Some "ss"
  | c when c >= 0xE0 && c <= 0xE5 -> Some "a"
  | 0xE6 -> Some "ae"
  | 0xE7 -> Some "c"
  | c when c >= 0xE8 && c <= 0xEB -> Some "e"
  | c when c >= 0xEC && c <= 0xEF -> Some "i"
  | 0xF1 -> Some "n"
  | c when (c >= 0xF2 && c <= 0xF6) || c = 0xF8 -> Some "o"
  | c when c >= 0xF9 && c <= 0xFC -> Some "u"
  | c when c = 0xFD || c = 0xFF -> Some "y"
  | c when c >= 0x100 && c <= 0x105 -> Some (if c land 1 = 0 then "A" else "a")
  | c when c >= 0x106 && c <= 0x10D -> Some (if c land 1 = 0 then "C" else "c")
  | c when c >= 0x10E && c <= 0x111 -> Some (if c land 1 = 0 then "D" else "d")
  | c when c >= 0x112 && c <= 0x11B -> Some (if c land 1 = 0 then "E" else "e")
  | c when c >= 0x11C && c <= 0x123 -> Some (if c land 1 = 0 then "G" else "g")
  | c when c >= 0x124 && c <= 0x127 -> Some (if c land 1 = 0 then "H" else "h")
  | c when c >= 0x128 && c <= 0x131 -> Some (if c land 1 = 0 then "I" else "i")
  | c when c >= 0x139 && c <= 0x142 -> Some (if c land 1 = 1 then "L" else "l")
  | c when c >= 0x143 && c <= 0x148 -> Some (if c land 1 = 1 then "N" else "n")
  | c when c >= 0x14C && c <= 0x151 -> Some (if c land 1 = 0 then "O" else "o")
  | c when c >= 0x154 && c <= 0x159 -> Some (if c land 1 = 0 then "R" else "r")
  | c when c >= 0x15A && c <= 0x161 -> Some (if c land 1 = 0 then "S" else "s")
  | c when c >= 0x162 && c <= 0x167 -> Some (if c land 1 = 0 then "T" else "t")
  | c when c >= 0x168 && c <= 0x173 -> Some (if c land 1 = 0 then "U" else "u")
  | c when c >= 0x179 && c <= 0x17E -> Some (if c land 1 = 1 then "Z" else "z")
  | _ -> None

let fold_utf8 f acc s =
  let n = String.length s in
  let rec loop acc i =
    if i >= n then acc
    else
      let d = String.get_utf_8_uchar s i in
      let u = Uchar.utf_decode_uchar d in
      let len = Uchar.utf_decode_length d in
      loop (f acc u) (i + len)
  in
  loop acc 0

let strip_diacritics s =
  if String.for_all (fun c -> Char.code c < 0x80) s then s
  else begin
    let buf = Buffer.create (String.length s) in
    fold_utf8
      (fun () u ->
        match strip_diacritic_uchar u with
        | Some base -> Buffer.add_string buf base
        | None -> Buffer.add_utf_8_uchar buf u)
      () s;
    Buffer.contents buf
  end

let casefold s = lowercase_ascii s

(* The paper's "special characters" option replaces each special character
   with the regular expression ".?" (Section 3.2.3.2).  A character is
   special when it is neither alphanumeric nor plain whitespace. *)
let is_special c =
  not
    ((c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = ' ' || c = '\t' || c = '\n' || c = '\r')

let special_chars_to_pattern word =
  let buf = Buffer.create (String.length word + 8) in
  String.iter
    (fun c ->
      if is_special c then Buffer.add_string buf ".?"
      else Buffer.add_char buf c)
    word;
  Buffer.contents buf
