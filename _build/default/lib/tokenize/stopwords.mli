(** Stop-word lists for the FTStopWordOption. *)

val default_english : string list

module Set : sig
  type t

  val of_list : string list -> t
  (** Case-insensitive membership set. *)

  val mem : t -> string -> bool
  val cardinal : t -> int

  val elements : t -> string list
  (** Sorted case-folded members. *)
end

val is_default_stop_word : string -> bool
