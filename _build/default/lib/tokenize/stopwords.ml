(* Default English stop-word list (the classic van-Rijsbergen-derived list
   used by most IR systems, trimmed to common function words).  XQuery
   Full-Text's default is *without* stop words; an explicit
   "without stopwords" / "with stopwords" option selects a list. *)

let default_english =
  [
    "a"; "about"; "above"; "after"; "again"; "against"; "all"; "am"; "an";
    "and"; "any"; "are"; "as"; "at"; "be"; "because"; "been"; "before";
    "being"; "below"; "between"; "both"; "but"; "by"; "can"; "cannot";
    "could"; "did"; "do"; "does"; "doing"; "down"; "during"; "each"; "few";
    "for"; "from"; "further"; "had"; "has"; "have"; "having"; "he"; "her";
    "here"; "hers"; "him"; "his"; "how"; "i"; "if"; "in"; "into"; "is"; "it";
    "its"; "itself"; "just"; "me"; "more"; "most"; "my"; "no"; "nor"; "not";
    "now"; "of"; "off"; "on"; "once"; "only"; "or"; "other"; "our"; "ours";
    "out"; "over"; "own"; "same"; "she"; "should"; "so"; "some"; "such";
    "than"; "that"; "the"; "their"; "theirs"; "them"; "then"; "there";
    "these"; "they"; "this"; "those"; "through"; "to"; "too"; "under";
    "until"; "up"; "very"; "was"; "we"; "were"; "what"; "when"; "where";
    "which"; "while"; "who"; "whom"; "why"; "will"; "with"; "would"; "you";
    "your"; "yours";
  ]

module Set = struct
  type t = (string, unit) Hashtbl.t

  let of_list words =
    let tbl = Hashtbl.create (List.length words * 2) in
    List.iter (fun w -> Hashtbl.replace tbl (Normalize.casefold w) ()) words;
    tbl

  let mem t word = Hashtbl.mem t (Normalize.casefold word)
  let cardinal = Hashtbl.length

  let elements t =
    Hashtbl.fold (fun w () acc -> w :: acc) t [] |> List.sort compare
end

let default_set = lazy (Set.of_list default_english)
let is_default_stop_word w = Set.mem (Lazy.force default_set) w
