(** Porter's English stemmer (Porter 1980), the algorithm GalaTex inherits
    from Galax's built-in stemmer. *)

val stem : string -> string
(** [stem w] reduces a lower-case ASCII word to its stem
    (e.g. ["connections"] -> ["connect"], ["usability"] -> ["usabl"]).
    Words of length <= 2 or containing non-[a-z] characters are returned
    unchanged. *)
