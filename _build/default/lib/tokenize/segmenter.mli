(** Tokenization of documents (off-line preprocessing) and search phrases
    (query-time), per paper Section 3.1.1. *)

type config = {
  paragraph_elements : string list;
  ignore_elements : string list;
}

val default_config : config
(** Paragraphs at [p]/[para]/[paragraph]; nothing ignored. *)

val is_word_char : char -> bool
val is_sentence_end : char -> bool

val tokenize_document : ?config:config -> Xmlkit.Node.t -> Token.t list
(** Tokens of every non-ignored text node of a sealed tree, in document
    order, with 1-based absolute positions, sentence and paragraph ordinals.
    @raise Invalid_argument if the tree is not sealed. *)

val tokenize_phrase : string -> Token.t list
(** Tokenize a search phrase; positions are relative to the phrase. *)

val words_of_phrase : string -> string list
