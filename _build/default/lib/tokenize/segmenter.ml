open Xmlkit

(* Tokenization of document trees and search phrases (the two preprocessing
   steps of Section 3.1.1).  Words are delimited by punctuation and
   whitespace, as the paper's tokenizer assumes for English.  Sentences end
   at '.', '!' or '?'; paragraphs start at configured block elements (and at
   blank lines inside text), and a paragraph break also ends the current
   sentence. *)

type config = {
  paragraph_elements : string list;
      (** element names that open a new paragraph (default p/para/paragraph) *)
  ignore_elements : string list;
      (** element names whose entire subtree is not tokenized *)
}

let default_config =
  { paragraph_elements = [ "p"; "para"; "paragraph" ]; ignore_elements = [] }

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || Char.code c >= 0x80 (* keep UTF-8 continuation/start bytes in words *)

let is_sentence_end c = c = '.' || c = '!' || c = '?'

type state = {
  mutable abs_pos : int;
  mutable sentence : int;
  mutable para : int;
  mutable sentence_break : bool;  (** a sentence boundary is pending *)
  mutable para_break : bool;  (** a paragraph boundary is pending *)
  mutable acc : Token.t list;
}

let emit st ~node word =
  if st.para_break then begin
    st.para <- st.para + 1;
    st.sentence <- st.sentence + 1;
    st.para_break <- false;
    st.sentence_break <- false
  end
  else if st.sentence_break then begin
    st.sentence <- st.sentence + 1;
    st.sentence_break <- false
  end;
  st.abs_pos <- st.abs_pos + 1;
  st.acc <-
    Token.make ~node ~sentence:st.sentence ~para:st.para ~abs_pos:st.abs_pos
      word
    :: st.acc

(* Scan one text run, emitting tokens and recording sentence/paragraph
   breaks.  A blank line (two newlines separated only by spaces) is a
   paragraph break. *)
let scan_text st ~node text =
  let n = String.length text in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      emit st ~node (Buffer.contents buf);
      Buffer.clear buf
    end
  in
  let rec blank_line_at i seen_nl =
    (* true when from position i we reach a second '\n' over spaces/tabs *)
    if i >= n then false
    else
      match text.[i] with
      | '\n' -> if seen_nl then true else blank_line_at (i + 1) true
      | ' ' | '\t' | '\r' -> blank_line_at (i + 1) seen_nl
      | _ -> false
  in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if is_word_char c then Buffer.add_char buf c
    else begin
      flush ();
      if is_sentence_end c then st.sentence_break <- true;
      if c = '\n' && blank_line_at (i + 1) true then st.para_break <- true
    end
  done;
  flush ()

let tokenize_document ?(config = default_config) root =
  if not (Node.is_sealed root) then
    invalid_arg "Segmenter.tokenize_document: tree is not sealed";
  let st =
    {
      abs_pos = 0;
      sentence = 1;
      para = 1;
      sentence_break = false;
      para_break = false;
      acc = [];
    }
  in
  let opens_paragraph name = List.mem name config.paragraph_elements in
  let ignored name = List.mem name config.ignore_elements in
  let first = ref true in
  let rec walk node =
    match Node.kind node with
    | Node.Text _ -> scan_text st ~node:(Node.dewey node) (Node.string_value node)
    | Node.Element { name; _ } ->
        if not (ignored name) then begin
          if opens_paragraph name then begin
            (* the very first paragraph element must not skip paragraph 1 *)
            if !first then first := false else st.para_break <- true
          end;
          List.iter walk (Node.children node);
          if opens_paragraph name then st.para_break <- true
        end
    | Node.Document _ -> List.iter walk (Node.children node)
    | Node.Attribute _ | Node.Comment _ | Node.Pi _ -> ()
  in
  walk root;
  List.rev st.acc

(* Search phrases are tokenized at query time (getSearchTokenInfo): absolute
   positions are 1..n within the phrase. *)
let tokenize_phrase phrase =
  let st =
    {
      abs_pos = 0;
      sentence = 1;
      para = 1;
      sentence_break = false;
      para_break = false;
      acc = [];
    }
  in
  scan_text st ~node:Dewey.root phrase;
  List.rev st.acc

let words_of_phrase phrase =
  List.map (fun (t : Token.t) -> t.Token.word) (tokenize_phrase phrase)
