(* A small backtracking regular-expression engine implementing the subset of
   XPath regular expressions that GalaTex's match-option technique relies on
   (fn:matches / fn:replace in Section 3.2.3.2): literals, '.', '?', '*',
   '+', '{n}', '{n,}', '{n,m}', character classes with ranges and negation,
   alternation, grouping, anchors and the \d \D \s \S \w \W escapes.

   Patterns are compiled to an AST once; matching is plain backtracking,
   which is ample for word-sized inputs (inverted-list vocabularies). *)

exception Parse_error of string

type node =
  | Empty
  | Char of char
  | Any
  | Class of { negated : bool; ranges : (char * char) list }
  | Seq of node list
  | Alt of node list
  | Star of node
  | Plus of node
  | Opt of node
  | Repeat of node * int * int option
  | Group of node
  | Bol
  | Eol

type t = { ast : node; source : string }

let source re = re.source

(* --- parser --- *)

type pstate = { src : string; mutable pos : int }

let ppeek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let padvance st = st.pos <- st.pos + 1

let class_of_escape = function
  | 'd' -> Some (false, [ ('0', '9') ])
  | 'D' -> Some (true, [ ('0', '9') ])
  | 's' -> Some (false, [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ])
  | 'S' -> Some (true, [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ])
  | 'w' ->
      Some (false, [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ])
  | 'W' -> Some (true, [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ])
  | _ -> None

let parse_escape st =
  match ppeek st with
  | None -> raise (Parse_error "trailing backslash")
  | Some c -> (
      padvance st;
      match class_of_escape c with
      | Some (negated, ranges) -> Class { negated; ranges }
      | None -> (
          match c with
          | 'n' -> Char '\n'
          | 't' -> Char '\t'
          | 'r' -> Char '\r'
          | '\\' | '.' | '?' | '*' | '+' | '(' | ')' | '[' | ']' | '{' | '}'
          | '|' | '^' | '$' | '-' ->
              Char c
          | c -> raise (Parse_error (Printf.sprintf "unknown escape \\%c" c))))

let parse_class st =
  (* after '[' *)
  let negated =
    match ppeek st with
    | Some '^' -> padvance st; true
    | _ -> false
  in
  let ranges = ref [] in
  let rec loop first =
    match ppeek st with
    | None -> raise (Parse_error "unterminated character class")
    | Some ']' when not first -> padvance st
    | Some c ->
        padvance st;
        let c =
          if c = '\\' then (
            match ppeek st with
            | Some e ->
                padvance st;
                (match e with
                | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r'
                | e -> e)
            | None -> raise (Parse_error "trailing backslash in class"))
          else c
        in
        (match ppeek st with
        | Some '-' when (match st.pos + 1 < String.length st.src with
                         | true -> st.src.[st.pos + 1] <> ']'
                         | false -> false) ->
            padvance st;
            (match ppeek st with
            | Some hi ->
                padvance st;
                if hi < c then raise (Parse_error "invalid range in class");
                ranges := (c, hi) :: !ranges
            | None -> raise (Parse_error "unterminated character class"))
        | _ -> ranges := (c, c) :: !ranges);
        loop false
  in
  loop true;
  Class { negated; ranges = List.rev !ranges }

let parse_int st =
  let start = st.pos in
  while (match ppeek st with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
    padvance st
  done;
  if st.pos = start then raise (Parse_error "expected a number in quantifier");
  int_of_string (String.sub st.src start (st.pos - start))

let rec parse_alt st =
  let first = parse_seq st in
  let rec loop acc =
    match ppeek st with
    | Some '|' ->
        padvance st;
        loop (parse_seq st :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with [ single ] -> single | alts -> Alt alts

and parse_seq st =
  let items = ref [] in
  let rec loop () =
    match ppeek st with
    | None | Some ')' | Some '|' -> ()
    | Some _ ->
        items := parse_postfix st :: !items;
        loop ()
  in
  loop ();
  match List.rev !items with
  | [] -> Empty
  | [ single ] -> single
  | items -> Seq items

and parse_postfix st =
  let atom = parse_atom st in
  let rec quantify node =
    match ppeek st with
    | Some '*' -> padvance st; quantify (Star node)
    | Some '+' -> padvance st; quantify (Plus node)
    | Some '?' -> padvance st; quantify (Opt node)
    | Some '{' ->
        padvance st;
        let lo = parse_int st in
        let hi =
          match ppeek st with
          | Some ',' -> (
              padvance st;
              match ppeek st with
              | Some '}' -> None
              | _ -> Some (parse_int st))
          | _ -> Some lo
        in
        (match ppeek st with
        | Some '}' -> padvance st
        | _ -> raise (Parse_error "unterminated {n,m} quantifier"));
        (match hi with
        | Some h when h < lo -> raise (Parse_error "quantifier max < min")
        | _ -> ());
        quantify (Repeat (node, lo, hi))
    | _ -> node
  in
  quantify atom

and parse_atom st =
  match ppeek st with
  | None -> raise (Parse_error "expected an atom")
  | Some '(' ->
      padvance st;
      let inner = parse_alt st in
      (match ppeek st with
      | Some ')' -> padvance st
      | _ -> raise (Parse_error "unterminated group"));
      Group inner
  | Some '[' -> padvance st; parse_class st
  | Some '.' -> padvance st; Any
  | Some '^' -> padvance st; Bol
  | Some '$' -> padvance st; Eol
  | Some '\\' -> padvance st; parse_escape st
  | Some ('*' | '+' | '?') -> raise (Parse_error "quantifier without an atom")
  | Some c -> padvance st; Char c

let compile source =
  let st = { src = source; pos = 0 } in
  let ast = parse_alt st in
  if st.pos < String.length source then
    raise (Parse_error "unbalanced ')' or trailing input");
  { ast; source }

(* --- matcher --- *)

let in_class negated ranges c =
  let hit = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
  if negated then not hit else hit

(* CPS backtracking: [m node s i k] tries to match [node] at [i], calling the
   continuation [k] with the position after the match. *)
let rec m node s i (k : int -> bool) =
  match node with
  | Empty -> k i
  | Char c -> i < String.length s && s.[i] = c && k (i + 1)
  | Any -> i < String.length s && k (i + 1)
  | Class { negated; ranges } ->
      i < String.length s && in_class negated ranges s.[i] && k (i + 1)
  | Seq nodes ->
      let rec seq nodes i =
        match nodes with [] -> k i | n :: rest -> m n s i (fun j -> seq rest j)
      in
      seq nodes i
  | Alt alts -> List.exists (fun n -> m n s i k) alts
  | Group n -> m n s i k
  | Opt n -> m n s i k || k i
  | Star n ->
      (* greedy with progress check to avoid looping on nullable bodies *)
      let rec star i =
        m n s i (fun j -> j > i && star j) || k i
      in
      star i
  | Plus n -> m n s i (fun j ->
      let rec star i = m n s i (fun j -> j > i && star j) || k i in
      star j)
  | Repeat (n, lo, hi) ->
      let rec rep count i =
        let can_more = match hi with None -> true | Some h -> count < h in
        (can_more
        && m n s i (fun j -> (j > i || count + 1 >= lo) && rep (count + 1) j))
        || (count >= lo && k i)
      in
      rep 0 i
  | Bol -> i = 0 && k i
  | Eol -> i = String.length s && k i

(* fn:matches semantics: true when the pattern matches a *substring*. *)
let matches re s =
  let n = String.length s in
  let rec try_from i = i <= n && (m re.ast s i (fun _ -> true) || try_from (i + 1)) in
  try_from 0

(* Anchored whole-string match, used for word-against-word comparison. *)
let matches_whole re s = m re.ast s 0 (fun j -> j = String.length s)

(* Leftmost match extent, for fn:replace. *)
let find_first re s from =
  let n = String.length s in
  let result = ref None in
  let rec try_from i =
    if i > n then ()
    else if
      m re.ast s i (fun j ->
          result := Some (i, j);
          true)
    then ()
    else try_from (i + 1)
  in
  try_from from;
  !result

let replace_all re s replacement =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i > n then ()
    else
      match find_first re s i with
      | None -> if i < n then Buffer.add_string buf (String.sub s i (n - i))
      | Some (lo, hi) ->
          Buffer.add_string buf (String.sub s i (lo - i));
          Buffer.add_string buf replacement;
          if hi = lo then begin
            (* empty match: emit one char to guarantee progress *)
            if lo < n then Buffer.add_char buf s.[lo];
            loop (lo + 1)
          end
          else loop hi
  in
  loop 0;
  Buffer.contents buf
