(** TokenInfo values (paper Section 3.1.1): a word and its position
    identifiers. *)

type t = {
  word : string;
  norm : string;
  abs_pos : int;
  node : Xmlkit.Dewey.t;
  sentence : int;
  para : int;
}

val make :
  ?node:Xmlkit.Dewey.t -> ?sentence:int -> ?para:int -> abs_pos:int -> string -> t

val identifier : t -> string
(** The paper's TokenInfo identifier: the containing node's Dewey label with
    the absolute word position appended (Figure 5(a): "1.3.1.1.4"). *)

val compare_pos : t -> t -> int
(** Order by absolute position. *)

val pp : t Fmt.t
