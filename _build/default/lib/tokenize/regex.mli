(** Regular expressions: the XPath [fn:matches] subset that GalaTex's
    match-option implementation technique uses (Section 3.2.3.2). *)

exception Parse_error of string

type t

val compile : string -> t
(** @raise Parse_error on a malformed pattern. *)

val source : t -> string

val matches : t -> string -> bool
(** [fn:matches] semantics: the pattern matches some substring. *)

val matches_whole : t -> string -> bool
(** Anchored match of the entire string — how one document word is compared
    against one (expanded) search-word pattern. *)

val replace_all : t -> string -> string -> string
(** [fn:replace] semantics with a literal replacement string. *)

val find_first : t -> string -> int -> (int * int) option
(** Leftmost match extent [(lo, hi)] starting at or after the given
    position; [None] when the pattern does not match. *)
