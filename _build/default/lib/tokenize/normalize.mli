(** Word-level normalization used by the case / diacritics / special-character
    match options. *)

val casefold : string -> string
(** ASCII case folding (search and document words are compared through this
    when the query is case insensitive — the spec default). *)

val strip_diacritics : string -> string
(** Strip Latin-1 Supplement / Latin Extended-A diacritics to base ASCII
    letters ("café" -> "cafe"). *)

val is_special : char -> bool
(** Special character in the sense of the FTSpecialCharOption: neither
    alphanumeric nor whitespace. *)

val special_chars_to_pattern : string -> string
(** Replace each special character in a search word with the regular
    expression [".?"] (the paper's Section 3.2.3.2 technique). *)
