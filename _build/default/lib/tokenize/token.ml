open Xmlkit

(* TokenInfo (Section 3.1.1): a word plus the identifiers GalaTex attaches
   to it — the Dewey label of the directly containing node, the word's
   absolute position in the document (the last component of the paper's
   TokenInfo identifier, e.g. "1.3.1.1.4" = node 1.3.1.1, word 4), and the
   sentence and paragraph that contain it (used by FTScope). *)

type t = {
  word : string;  (** surface form as it appears in the text *)
  norm : string;  (** case-folded form used for index keys *)
  abs_pos : int;  (** 1-based absolute word position in the document *)
  node : Dewey.t;  (** Dewey label of the directly containing node *)
  sentence : int;  (** 1-based sentence ordinal *)
  para : int;  (** 1-based paragraph ordinal *)
}

let make ?(node = Dewey.root) ?(sentence = 1) ?(para = 1) ~abs_pos word =
  { word; norm = Normalize.casefold word; abs_pos; node; sentence; para }

(* The full TokenInfo identifier: node Dewey label + absolute position. *)
let identifier t = Dewey.to_string t.node ^ "." ^ string_of_int t.abs_pos

let compare_pos a b = compare a.abs_pos b.abs_pos

let pp ppf t =
  Fmt.pf ppf "%s@%s(s%d,p%d)" t.word (identifier t) t.sentence t.para
