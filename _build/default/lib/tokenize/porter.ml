(* Porter's English stemmer (M.F. Porter, "An algorithm for suffix
   stripping", 1980) — the same algorithm GalaTex inherits from Galax's
   built-in stemmer (Section 3.2.3.2: "connections" -> "connect").

   The implementation follows the five-step structure of the original paper.
   Words are assumed lower-case ASCII; anything else is returned unchanged by
   [stem]. *)

let is_ascii_lower c = c >= 'a' && c <= 'z'

(* A consonant in Porter's sense: not a-e-i-o-u, and 'y' is a consonant only
   when the preceding letter is a vowel (or at position 0). *)
let rec is_consonant w i =
  match w.[i] with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (is_consonant w (i - 1))
  | _ -> true

(* measure m of w[0..j]: number of VC sequences in the [C](VC){m}[V] form. *)
let measure w j =
  let n = j + 1 in
  let rec skip_consonants i =
    if i >= n then i else if is_consonant w i then skip_consonants (i + 1) else i
  in
  let rec skip_vowels i =
    if i >= n then i else if is_consonant w i then i else skip_vowels (i + 1)
  in
  let rec count i m =
    let i = skip_vowels i in
    if i >= n then m
    else
      let i = skip_consonants i in
      count i (m + 1)
  in
  let i = skip_consonants 0 in
  count i 0

let has_vowel w j =
  let rec loop i = i <= j && ((not (is_consonant w i)) || loop (i + 1)) in
  loop 0

let double_consonant w j =
  j >= 1 && w.[j] = w.[j - 1] && is_consonant w j

(* cvc at the end, where the last c is not w, x or y. *)
let cvc w j =
  j >= 2
  && is_consonant w j
  && (not (is_consonant w (j - 1)))
  && is_consonant w (j - 2)
  && (match w.[j] with 'w' | 'x' | 'y' -> false | _ -> true)

let ends_with w suffix =
  let lw = String.length w and ls = String.length suffix in
  lw >= ls && String.sub w (lw - ls) ls = suffix

(* Replace [suffix] by [repl] if the stem before it has measure > [m_gt]. *)
let replace_if_measure w suffix repl m_gt =
  if ends_with w suffix then begin
    let stem_len = String.length w - String.length suffix in
    if stem_len > 0 && measure w (stem_len - 1) > m_gt then
      Some (String.sub w 0 stem_len ^ repl)
    else None
  end
  else None

let step1a w =
  if ends_with w "sses" then String.sub w 0 (String.length w - 2)
  else if ends_with w "ies" then String.sub w 0 (String.length w - 3) ^ "i"
  else if ends_with w "ss" then w
  else if ends_with w "s" && String.length w > 1 then
    String.sub w 0 (String.length w - 1)
  else w

let step1b w =
  let after_removal w =
    if ends_with w "at" || ends_with w "bl" || ends_with w "iz" then w ^ "e"
    else
      let j = String.length w - 1 in
      if
        double_consonant w j
        && (match w.[j] with 'l' | 's' | 'z' -> false | _ -> true)
      then String.sub w 0 j
      else if measure w j = 1 && cvc w j then w ^ "e"
      else w
  in
  if ends_with w "eed" then begin
    let stem_len = String.length w - 3 in
    if stem_len > 0 && measure w (stem_len - 1) > 0 then
      String.sub w 0 (String.length w - 1)
    else w
  end
  else if ends_with w "ed" then begin
    let stem = String.sub w 0 (String.length w - 2) in
    if stem <> "" && has_vowel stem (String.length stem - 1) then
      after_removal stem
    else w
  end
  else if ends_with w "ing" then begin
    let stem = String.sub w 0 (String.length w - 3) in
    if stem <> "" && has_vowel stem (String.length stem - 1) then
      after_removal stem
    else w
  end
  else w

let step1c w =
  if ends_with w "y" then begin
    let stem_len = String.length w - 1 in
    if stem_len > 0 && has_vowel w (stem_len - 1) then
      String.sub w 0 stem_len ^ "i"
    else w
  end
  else w

let step2_rules =
  [
    ("ational", "ate"); ("tional", "tion"); ("enci", "ence"); ("anci", "ance");
    ("izer", "ize"); ("abli", "able"); ("alli", "al"); ("entli", "ent");
    ("eli", "e"); ("ousli", "ous"); ("ization", "ize"); ("ation", "ate");
    ("ator", "ate"); ("alism", "al"); ("iveness", "ive"); ("fulness", "ful");
    ("ousness", "ous"); ("aliti", "al"); ("iviti", "ive"); ("biliti", "ble");
  ]

let step3_rules =
  [
    ("icate", "ic"); ("ative", ""); ("alize", "al"); ("iciti", "ic");
    ("ical", "ic"); ("ful", ""); ("ness", "");
  ]

let apply_rules rules m_gt w =
  let rec loop = function
    | [] -> w
    | (suffix, repl) :: rest -> (
        if ends_with w suffix then
          match replace_if_measure w suffix repl m_gt with
          | Some w' -> w'
          | None -> w
        else loop rest)
  in
  loop rules

let step4_suffixes =
  [
    "al"; "ance"; "ence"; "er"; "ic"; "able"; "ible"; "ant"; "ement"; "ment";
    "ent"; "ou"; "ism"; "ate"; "iti"; "ous"; "ive"; "ize";
  ]

let step4 w =
  (* "ion" only drops after s or t. *)
  let drop suffix =
    let stem_len = String.length w - String.length suffix in
    if stem_len > 0 && measure w (stem_len - 1) > 1 then
      Some (String.sub w 0 stem_len)
    else None
  in
  if ends_with w "ion" then begin
    let stem_len = String.length w - 3 in
    if
      stem_len > 0
      && (w.[stem_len - 1] = 's' || w.[stem_len - 1] = 't')
      && measure w (stem_len - 1) > 1
    then String.sub w 0 stem_len
    else w
  end
  else
    let rec loop = function
      | [] -> w
      | suffix :: rest ->
          if ends_with w suffix then
            match drop suffix with Some w' -> w' | None -> w
          else loop rest
    in
    loop step4_suffixes

let step5a w =
  if ends_with w "e" then begin
    let j = String.length w - 2 in
    let m = measure w j in
    if m > 1 || (m = 1 && not (cvc w j)) then String.sub w 0 (String.length w - 1)
    else w
  end
  else w

let step5b w =
  let j = String.length w - 1 in
  if j >= 1 && w.[j] = 'l' && double_consonant w j && measure w j > 1 then
    String.sub w 0 j
  else w

let stem word =
  if String.length word <= 2 then word
  else if not (String.for_all is_ascii_lower word) then word
  else
    word |> step1a |> step1b |> step1c
    |> apply_rules step2_rules 0
    |> apply_rules step3_rules 0
    |> step4 |> step5a |> step5b
