(** Thesauri for the FTThesaurusOption: directed term relationships with
    bounded-level transitive expansion. *)

type t

val create : name:string -> (string * string * string) list -> t
(** [create ~name entries] where each entry is
    [(relationship, from_term, to_term)].  Terms are case-folded. *)

val synonym_ring : name:string -> string list list -> t
(** Build a thesaurus where every pair of words inside each group are mutual
    synonyms. *)

val name : t -> string

val domain : t -> string list
(** All terms appearing as relationship sources, sorted and
    duplicate-free. *)

val lookup : t -> ?relationship:string -> ?levels:int -> string -> string list
(** Terms reachable from the word through [relationship] (any relationship
    when omitted) in at most [levels] steps (default 1), including the word
    itself.  Sorted, duplicate-free. *)
