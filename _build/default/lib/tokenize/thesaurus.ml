(* Thesaurus support for the FTThesaurusOption.  A thesaurus is a set of
   directed relationships between terms (e.g. "synonym", "broader term",
   "narrower term"); a lookup expands a word to all terms reachable through
   a chosen relationship within a level bound, which is how the W3C spec
   phrases thesaurus expansion. *)

type entry = { relationship : string; from_term : string; to_term : string }
type t = { name : string; entries : entry list }

let create ~name entries =
  {
    name;
    entries =
      List.map
        (fun (relationship, from_term, to_term) ->
          {
            relationship;
            from_term = Normalize.casefold from_term;
            to_term = Normalize.casefold to_term;
          })
        entries;
  }

let name t = t.name

let synonym_ring ~name groups =
  (* Every pair inside a group is a bidirectional "synonym" relationship. *)
  let entries =
    List.concat_map
      (fun group ->
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b -> if a = b then None else Some ("synonym", a, b))
              group)
          group)
      groups
  in
  create ~name entries

let domain t =
  List.map (fun e -> e.from_term) t.entries |> List.sort_uniq compare

let step t ?relationship word =
  let word = Normalize.casefold word in
  List.filter_map
    (fun e ->
      let rel_ok =
        match relationship with
        | None -> true
        | Some r -> String.lowercase_ascii r = e.relationship
      in
      if rel_ok && e.from_term = word then Some e.to_term else None)
    t.entries

let lookup t ?relationship ?(levels = 1) word =
  let seen = Hashtbl.create 16 in
  let add w = if not (Hashtbl.mem seen w) then Hashtbl.replace seen w () in
  let rec expand frontier level =
    if level > levels || frontier = [] then ()
    else begin
      let next =
        List.concat_map
          (fun w ->
            List.filter
              (fun w' -> not (Hashtbl.mem seen w'))
              (step t ?relationship w))
          frontier
      in
      List.iter add next;
      expand (List.sort_uniq compare next) (level + 1)
    end
  in
  let word = Normalize.casefold word in
  add word;
  expand [ word ] 1;
  (* the original word is included in its own expansion *)
  Hashtbl.fold (fun w () acc -> w :: acc) seen [] |> List.sort compare
