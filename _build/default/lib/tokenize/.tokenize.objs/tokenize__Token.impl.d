lib/tokenize/token.ml: Dewey Fmt Normalize Xmlkit
