lib/tokenize/porter.mli:
