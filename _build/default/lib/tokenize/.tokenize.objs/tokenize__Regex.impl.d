lib/tokenize/regex.ml: Buffer List Printf String
