lib/tokenize/segmenter.mli: Token Xmlkit
