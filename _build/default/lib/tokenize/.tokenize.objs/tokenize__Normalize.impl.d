lib/tokenize/normalize.ml: Buffer Char String Uchar
