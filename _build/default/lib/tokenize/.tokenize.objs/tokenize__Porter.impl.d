lib/tokenize/porter.ml: String
