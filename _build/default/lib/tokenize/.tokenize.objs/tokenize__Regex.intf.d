lib/tokenize/regex.mli:
