lib/tokenize/stopwords.mli:
