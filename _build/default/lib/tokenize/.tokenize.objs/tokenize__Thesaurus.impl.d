lib/tokenize/thesaurus.ml: Hashtbl List Normalize String
