lib/tokenize/normalize.mli:
