lib/tokenize/token.mli: Fmt Xmlkit
