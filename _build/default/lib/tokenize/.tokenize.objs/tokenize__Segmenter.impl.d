lib/tokenize/segmenter.ml: Buffer Char Dewey List Node String Token Xmlkit
