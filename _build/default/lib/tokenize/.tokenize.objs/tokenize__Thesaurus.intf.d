lib/tokenize/thesaurus.mli:
