lib/tokenize/stopwords.ml: Hashtbl Lazy List Normalize
