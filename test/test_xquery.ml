(* Semantics of the XQuery engine (the Galax substitute), exercised through
   source queries against a fixed bibliography document. *)

let bib_src =
  {|<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><author>Stevens</author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><price>39.95</price></book>
  <book year="1999"><title>Economics of Technology</title><author>Gecsei</author><price>129.95</price></book>
</bib>|}

let bib = lazy (Xmlkit.Parser.parse_document ~uri:"bib.xml" bib_src)

let run src =
  let doc = Lazy.force bib in
  let resolve_doc u = if u = "bib.xml" then Some doc else None in
  Xquery.Eval.run_string ~resolve_doc ~context_node:doc src

let display src = Xquery.Value.to_display_string (run src)

let check_q msg expected src = Alcotest.check Alcotest.string msg expected (display src)

let test_arithmetic () =
  check_q "precedence" "7" "1 + 2 * 3";
  check_q "div" "2.5" "5 div 2";
  check_q "idiv" "2" "5 idiv 2";
  check_q "mod" "1" "5 mod 2";
  check_q "unary minus" "-3" "-(1 + 2)";
  check_q "range" "1 2 3 4" "1 to 4";
  check_q "empty range" "" "4 to 1";
  check_q "float math" "3.5" "1.5 + 2"

let test_comparisons () =
  check_q "general eq over seq" "true" "(1, 2, 3) = 2";
  check_q "general eq false" "false" "(1, 2, 3) = 5";
  check_q "string vs number promote" "true" "'42' = 42";
  check_q "value lt" "true" "1 lt 2";
  check_q "value empty gives empty" "" "() eq 1";
  check_q "ne existential" "true" "(1, 2) != 1"

let test_logic () =
  check_q "and" "false" "true() and false()";
  check_q "or" "true" "true() or false()";
  check_q "not" "true" "not(0)";
  check_q "ebv of nodes" "y" "if (//book) then 'y' else 'n'"

let test_paths () =
  check_q "count descendant" "3" "count(//book)";
  check_q "attribute test" "2" "count(//book[@year > 1995])";
  check_q "predicate position" "Data on the Web" "string((//book)[2]/title)";
  check_q "position()=last()" "Economics of Technology"
    "string(//book[position() = last()]/title)";
  check_q "parent step" "1" "count(//author[. = 'Stevens']/..)";
  check_q "text()" "TCP/IP Illustrated" "string((//title/text())[1])";
  check_q "wildcard" "10" "count(//book/*)";
  check_q "union dedups" "1" "count(//book/.. | //bib)"

let test_axes () =
  check_q "ancestor root name" "bib"
    "string(fn:name((//author)[1]/ancestor::*[last()]))";
  check_q "following-sibling" "2"
    "count((//book)[1]/following-sibling::book)";
  check_q "preceding-sibling" "2"
    "count((//book)[3]/preceding-sibling::book)";
  check_q "self" "1" "count((//book)[1]/self::book)";
  check_q "self name test miss" "0" "count((//book)[1]/self::title)";
  check_q "descendant-or-self" "4" "count(//bib/descendant-or-self::*[self::bib or self::book])"

let test_flwor () =
  check_q "where + order by" "TCP/IP Illustrated Data on the Web"
    "string-join(for $b in //book where $b/price < 70 order by $b/title descending return string($b/title), ' ')";
  check_q "let" "6" "let $x := (1, 2, 3) return sum($x)";
  check_q "positional var" "1:1994 2:2000 3:1999"
    "string-join(for $b at $i in //book return concat($i, ':', $b/@year), ' ')";
  check_q "order by numeric" "39.95 65.95 129.95"
    "string-join(for $p in //price order by number($p) return string($p), ' ')";
  check_q "multiple for = product" "4"
    "count(for $x in (1,2), $y in ('a','b') return concat($x, $y))"

let test_quantifiers () =
  check_q "some true" "true" "some $b in //book satisfies $b/author = 'Stevens'";
  check_q "some false" "false" "some $b in //book satisfies $b/price > 1000";
  check_q "every true" "true" "every $b in //book satisfies $b/price > 30";
  check_q "every false" "false" "every $b in //book satisfies count($b/author) = 1";
  check_q "nested bindings" "true"
    "some $b in //book, $a in $b/author satisfies $a = 'Buneman'"

let test_constructors () =
  check_q "attr template" "<r n=\"3\"/>" "<r n=\"{count(//book)}\"/>";
  check_q "content expr copies node" "<w><title>TCP/IP Illustrated</title></w>"
    "<w>{(//title)[1]}</w>";
  check_q "atomics joined with spaces" "<s>1 2 3</s>" "<s>{1, 2, 3}</s>";
  check_q "nested constructors" "<o><i>x</i></o>" "<o><i>x</i></o>";
  check_q "boundary space stripped" "<o><i/></o>" "<o> <i/> </o>";
  check_q "computed element" "<r><x>1</x></r>"
    "element r { element x { 1 } }";
  check_q "computed element dynamic name" "<dyn>v</dyn>"
    "element {concat('d', 'yn')} { 'v' }";
  check_q "computed attribute" "<r k=\"a b\"/>"
    "element r { attribute k { ('a', 'b') } }";
  check_q "computed text" "<r>1 2</r>" "element r { text { (1, 2) } }"

let test_functions () =
  check_q "concat" "abc" "concat('a', 'b', 'c')";
  check_q "contains" "true" "contains('usability', 'sab')";
  check_q "starts/ends" "true true"
    "(starts-with('abc', 'ab'), ends-with('abc', 'bc'))";
  check_q "substring" "bcd" "substring('abcde', 2, 3)";
  check_q "lower/upper" "abc ABC" "(lower-case('AbC'), upper-case('aBc'))";
  check_q "normalize-space" "a b" "normalize-space('  a   b  ')";
  check_q "translate" "ABr" "translate('bar', 'ab', 'BA')";
  check_q "matches" "true" "matches('usability', 'us.*ty')";
  check_q "replace" "non immigrant" "replace('non-immigrant', '-', ' ')";
  check_q "tokenize keeps empties" "a|b||c"
    "string-join(tokenize('a,b,,c', ','), '|')";
  check_q "string-join" "x;y" "string-join(('x','y'), ';')";
  check_q "substring-after" "c" "substring-after('a=b=c', 'b=')";
  check_q "substring-before" "a" "substring-before('a=b', '=')";
  check_q "distinct-values" "3" "count(distinct-values((1, 2, 2, 3)))";
  check_q "index-of" "2" "string(index-of(('a','b','c'), 'b'))";
  check_q "subsequence" "b c" "string-join(subsequence(('a','b','c','d'), 2, 2), ' ')";
  check_q "reverse" "c b a" "string-join(reverse(('a','b','c')), ' ')";
  check_q "sum avg" "6 2" "(sum((1,2,3)), avg((1,2,3)))";
  check_q "min max" "1 3" "(min((3,1,2)), max((3,1,2)))";
  check_q "round floor ceiling" "3 2 3" "(round(2.6), floor(2.6), ceiling(2.2))";
  check_q "doc" "3" "count(doc('bib.xml')//book)";
  check_q "local-name strips prefix" "x" "local-name(<fts:x/>)";
  check_q "exists/empty" "true false" "(exists(//book), empty(//book))";
  check_q "compare" "-1 0 1"
    "(compare('a', 'b'), compare('x', 'x'), compare('b', 'a'))";
  check_q "codepoints round trip" "abc"
    "codepoints-to-string(string-to-codepoints('abc'))";
  check_q "string-to-codepoints" "97 98" "string-to-codepoints('ab')";
  check_q "deep-equal true" "true" "deep-equal(<a x=\"1\"><b/>t</a>, <a x=\"1\"><b/>t</a>)";
  check_q "deep-equal attr differs" "false" "deep-equal(<a x=\"1\"/>, <a x=\"2\"/>)";
  check_q "deep-equal atomics" "true" "deep-equal((1, 'a'), (1, 'a'))";
  check_q "deep-equal length" "false" "deep-equal((1, 2), (1))"

let test_user_functions () =
  check_q "simple function" "42"
    "declare function local:double($x) { $x * 2 }; local:double(21)";
  check_q "recursion" "120"
    "declare function local:fact($n) { if ($n <= 1) then 1 else $n * local:fact($n - 1) }; local:fact(5)";
  check_q "mutual composition" "8"
    "declare function local:inc($x) { $x + 1 }; declare function local:twice($x) { local:inc(local:inc($x)) }; local:twice(6)";
  check_q "declared variable" "15" "declare variable $base := 10; $base + 5";
  check_q "function over sequences" "3"
    "declare function local:len($s) { count($s) }; local:len((1, 2, 3))"

let test_errors () =
  let expect_error src =
    match run src with
    | exception Xquery.Errors.Error _ -> ()
    | _ -> Alcotest.failf "expected a dynamic error for %s" src
  in
  expect_error "$undefined_variable";
  expect_error "unknown:function(1)";
  expect_error "doc('missing.xml')";
  expect_error "1 + (1, 2)"

let test_parse_errors () =
  let expect_parse_error src =
    match Xquery.Parser.parse_query src with
    | exception Xquery.Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" src
  in
  expect_parse_error "for $x in";
  expect_parse_error "1 +";
  expect_parse_error "//book[";
  expect_parse_error "let $x = 3 return $x";
  expect_parse_error "if (1) then 2";
  expect_parse_error "some $x in (1,2)"

let test_focus_errors () =
  match Xquery.Eval.run_string "//book" with
  | exception Xquery.Errors.Error { code = Xquery.Errors.XPDY0002; _ } -> ()
  | _ -> Alcotest.fail "path with no context should fail"

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "paths" `Quick test_paths;
    Alcotest.test_case "axes" `Quick test_axes;
    Alcotest.test_case "flwor" `Quick test_flwor;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "builtin functions" `Quick test_functions;
    Alcotest.test_case "user functions" `Quick test_user_functions;
    Alcotest.test_case "dynamic errors" `Quick test_errors;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "no-focus errors" `Quick test_focus_errors;
  ]
