(* Cross-strategy equivalence: the paper-faithful all-XQuery translated
   path, the native materialized operators, and the Section 4.1 pipelined
   operators must agree on every query — this is the repository's central
   conformance property. *)

open Galatex

let engine = lazy (Corpus.Usecases.engine ())

let strategies =
  [
    ("materialized", Engine.Native_materialized);
    ("pipelined", Engine.Native_pipelined);
    ("translated", Engine.Translated);
  ]

let results src strategy =
  Xquery.Value.to_display_string (Engine.run (Lazy.force engine) ~strategy src)

let check_agree src =
  let reference = results src Engine.Native_materialized in
  List.iter
    (fun (name, strategy) ->
      Alcotest.check Alcotest.string
        (Printf.sprintf "%s on %s" name src)
        reference (results src strategy))
    strategies

let fixed_queries =
  [
    {|for $b in collection()//book[. ftcontains "usability" && "testing"] return string($b/@number)|};
    {|count(collection()//p[. ftcontains "usability" || "databases"])|};
    {|for $b in collection()//book[. ftcontains "software" occurs at least 2 times] return string($b/@number)|};
    {|count(collection()//p[. ftcontains "usability" && "software" distance at most 5 words])|};
    {|count(collection()//p[. ftcontains "usability" && "product" window 13 words])|};
    {|for $b in collection()//book[. ftcontains ! "usability"] return string($b/@number)|};
    {|for $b in collection()//book[. ftcontains "tests" with stemming] return string($b/@number)|};
    {|for $b in collection()//book[./metadata ftcontains "mitp" case sensitive] return string($b/@number)|};
    {|count(collection()//chapter[./title ftcontains "usability" && "assessment" ordered])|};
    (* scores are compared with a tolerance in prop_scores_agree: the
       translated path's floats differ in the last ulps (different
       multiplication grouping inside the XQuery interpreter) *)
    {|count(for $s in collection()//book
            let $score := ft:score($s, "usability" weight 0.5 && "testing" weight 0.5)
            where $score > 0 return $s)|};
    {|count(collection()//p[. ftcontains "usability" && "experts" same sentence])|};
    {|for $b in collection()//book[./content ftcontains "relational" without content ./content//title]
      return string($b/@number)|};
    {|for $b in collection()//book[. ftcontains "usability testing" not in "of usability testing"]
      return string($b/@number)|};
  ]

let test_fixed_queries () = List.iter check_agree fixed_queries

(* --- optimizations preserve IO accounting --- *)

(* Result-identical runs must read the same postings.  Pushdown only
   reorders filters above the FTWords leaves, so it may not change
   [postings_read] at all; or-short-circuit rewrites FTOr into XQuery's
   lazy [or], so it may legitimately read {e fewer} postings — never
   more. *)
let postings_read ~optimizations src =
  let report =
    Engine.run_report (Lazy.force engine) ~strategy:Engine.Native_materialized
      ~optimizations src
  in
  report.Engine.counters.Xquery.Limits.postings_read

let test_postings_read_stable () =
  List.iter
    (fun src ->
      let plain = postings_read ~optimizations:Engine.no_optimizations src in
      let again = postings_read ~optimizations:Engine.no_optimizations src in
      let pushed =
        postings_read
          ~optimizations:{ Engine.pushdown = true; or_short_circuit = false }
          src
      in
      let all = postings_read ~optimizations:Engine.all_optimizations src in
      Alcotest.(check int)
        (Printf.sprintf "repeated runs read identical postings: %s" src)
        plain again;
      Alcotest.(check int)
        (Printf.sprintf "pushdown reads identical postings: %s" src)
        plain pushed;
      if not (all <= plain) then
        Alcotest.failf
          "all optimizations read more postings (%d > %d) on %s" all plain src)
    fixed_queries

(* --- randomized cross-strategy agreement --- *)

let vocab =
  [ "usability"; "testing"; "software"; "databases"; "quality"; "product";
    "experts"; "users"; "relational"; "nosuchword" ]

let gen_selection =
  let open QCheck2.Gen in
  let leaf =
    map2
      (fun w opts -> Printf.sprintf "\"%s\"%s" w opts)
      (oneofl vocab)
      (oneofl [ ""; " with stemming"; " case sensitive" ])
  in
  let rec sel depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (4, leaf);
          (2, map2 (Printf.sprintf "(%s && %s)") (sel (depth - 1)) (sel (depth - 1)));
          (2, map2 (Printf.sprintf "(%s || %s)") (sel (depth - 1)) (sel (depth - 1)));
          (1, map (Printf.sprintf "(! %s)") leaf);
          (1, map (Printf.sprintf "(%s ordered)") (sel (depth - 1)));
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s window %d words)" a n)
              (sel (depth - 1)) (int_range 2 20) );
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s distance at most %d words)" a n)
              (sel (depth - 1)) (int_range 1 15) );
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s occurs at least %d times)" a n)
              (sel (depth - 1)) (int_range 1 3) );
          (1, map (Printf.sprintf "(%s same sentence)") (sel (depth - 1)));
        ]
  in
  sel 2

let gen_context = QCheck2.Gen.oneofl [ "//book"; "//p"; "//chapter"; "//title" ]

let prop_strategies_agree =
  QCheck2.Test.make ~name:"three strategies agree on random queries" ~count:40
    QCheck2.Gen.(pair gen_context gen_selection)
    (fun (ctx, sel) ->
      let query =
        Printf.sprintf "count(collection()%s[. ftcontains %s])" ctx sel
      in
      let reference = results query Engine.Native_materialized in
      List.for_all
        (fun (_, strategy) -> results query strategy = reference)
        strategies)

let prop_scores_agree =
  QCheck2.Test.make ~name:"scores agree across strategies" ~count:25
    gen_selection (fun sel ->
      let query =
        Printf.sprintf
          "for $b in collection()//book return ft:score($b, %s)" sel
      in
      let to_floats strategy =
        List.map
          (function
            | Xquery.Value.Double d -> d
            | Xquery.Value.Integer i -> float_of_int i
            | _ -> nan)
          (Engine.run (Lazy.force engine) ~strategy query)
      in
      let reference = to_floats Engine.Native_materialized in
      List.for_all
        (fun (_, strategy) ->
          let got = to_floats strategy in
          (* summation order differs across strategies, so comparison needs
             a relative component on top of the absolute floor *)
          let close a b =
            Float.abs (a -. b)
            <= 1e-9 +. (1e-6 *. Float.max (Float.abs a) (Float.abs b))
          in
          List.length got = List.length reference
          && List.for_all2 close got reference)
        strategies)

let tests =
  [
    Alcotest.test_case "fixed query battery" `Slow test_fixed_queries;
    Alcotest.test_case "optimizations keep postings_read honest" `Slow
      test_postings_read_stable;
    QCheck_alcotest.to_alcotest prop_strategies_agree;
    QCheck_alcotest.to_alcotest prop_scores_agree;
  ]
