(* The write-ahead-log durability contract:

   1. applying an operation is exact: the updated index is bit-equal
      (documents, postings, corpus-wide scores) to re-indexing the updated
      document set from scratch (deterministic cases + qcheck over random
      op sequences);
   2. append / recover round-trips: records come back in order with dense
      sequence numbers, a reopened writer continues the sequence;
   3. a torn tail (the file ends inside the last record's promised extent)
      is dropped silently and truncated physically on reopen; mid-log
      corruption (bytes present, checksum wrong) surfaces as GTLX0010; a
      log format version bump surfaces as GTLX0007; a stale log (base
      generation older than the manifest — a compaction's leftover) is
      ignored;
   4. a fault injected at *any* I/O operation of an append, a recovery
      read, or a compaction yields exactly one of: an index equal to
      re-indexing some acknowledged prefix of the operations, or a
      structured gtlx:/err: error — never a raw exception, never silently
      wrong postings.  Compaction never loses an acknowledged update: after
      any faulted compact, recovery yields the *full* updated index or a
      structured error.

   Exactness is cross-checked at the query level, test_store style: a
   recovered engine answers the use-case query identically to an engine
   indexed from scratch over the folded document set. *)

open Ftindex

let index_eq = Test_store.index_eq
let with_dir = Test_store.with_dir
let corpus_sources = Test_store.corpus_sources
let faults = Test_store.faults
let check_same = Test_store.check_same

let structured_codes =
  [
    Xquery.Errors.GTLX0006;
    Xquery.Errors.GTLX0007;
    Xquery.Errors.GTLX0008;
    Xquery.Errors.GTLX0010;
    Xquery.Errors.FODC0002;
  ]

let structured e = List.mem e.Xquery.Errors.code structured_codes

let zebra_doc =
  "<book><title>Zebra quokka</title><p>entirely new words about zebra \
   usability</p></book>"

let replacement_a =
  "<book><title>Usability rewritten</title><p>the same uri with different \
   testing text</p></book>"

(* adds c.xml, removes b.xml, replaces a.xml: every op kind, and no
   document survives untouched (so salvage-source ambiguity cannot hide
   an inexact recovery) *)
let update_ops =
  [
    Wal.Add_doc { uri = "c.xml"; source = zebra_doc };
    Wal.Remove_doc "b.xml";
    Wal.Add_doc { uri = "a.xml"; source = replacement_a };
  ]

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

(* every index reachable by acknowledging a prefix of [ops] *)
let prefix_indexes sources ops =
  List.init
    (List.length ops + 1)
    (fun k -> Indexer.index_strings (Wal.fold_sources sources (take k ops)))

let base_index () = Indexer.index_strings corpus_sources

(* --- 1. apply = reindex from scratch --- *)

let test_apply_exact () =
  let applied =
    List.fold_left (fun i op -> Wal.apply i op) (base_index ()) update_ops
  in
  let scratch =
    Indexer.index_strings (Wal.fold_sources corpus_sources update_ops)
  in
  check_same "apply = fold_sources reindex" applied scratch;
  (* removing an absent uri is a no-op *)
  check_same "remove of unknown uri"
    (Wal.apply (base_index ()) (Wal.Remove_doc "nope.xml"))
    (base_index ());
  (* query-level cross-check *)
  let q = Test_store.usecase_query in
  Alcotest.(check string)
    "applied engine answers like a fresh one"
    (Xquery.Value.to_display_string
       (Galatex.Engine.run
          (Galatex.Engine.of_strings
             (Wal.fold_sources corpus_sources update_ops))
          q))
    (Xquery.Value.to_display_string
       (Galatex.Engine.run (Galatex.Engine.of_index applied) q))

let gen_ops =
  let open QCheck2.Gen in
  let uris = [| "a.xml"; "b.xml"; "d0.xml"; "d1.xml" |] in
  let vocab =
    [| "usability"; "testing"; "web"; "design"; "zebra"; "quokka"; "goals" |]
  in
  let gen_doc =
    let* words = list_size (int_range 1 12) (oneofa vocab) in
    return (Printf.sprintf "<doc><p>%s</p></doc>" (String.concat " " words))
  in
  let gen_op =
    let* uri = oneofa uris in
    frequency
      [
        ( 3,
          let* source = gen_doc in
          return (Wal.Add_doc { uri; source }) );
        (1, return (Wal.Remove_doc uri));
      ]
  in
  list_size (int_range 0 10) gen_op

let prop_apply_exact =
  QCheck2.Test.make ~name:"Wal.apply sequence = reindex from scratch"
    ~count:40 gen_ops (fun ops ->
      let applied =
        List.fold_left (fun i op -> Wal.apply i op) (base_index ()) ops
      in
      let scratch =
        Indexer.index_strings (Wal.fold_sources corpus_sources ops)
      in
      index_eq applied scratch)

(* --- 2. append / recover round trips --- *)

let test_writer_roundtrip () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      List.iter (fun op -> ignore (Wal.append w op)) update_ops;
      Alcotest.(check int) "records counted" 3 (Wal.wal_records w);
      (match Wal.read_log ~dir () with
      | None -> Alcotest.fail "log vanished"
      | Some log ->
          Alcotest.(check int) "base generation" 1 log.Wal.base_generation;
          Alcotest.(check bool) "no torn tail" false log.Wal.truncated;
          Alcotest.(check (list int))
            "dense 1-based sequence" [ 1; 2; 3 ]
            (List.map (fun r -> r.Wal.seq) log.Wal.records);
          Alcotest.(check bool)
            "operations preserved" true
            (List.map (fun r -> r.Wal.op) log.Wal.records = update_ops);
          check_same "replay is exact"
            (Indexer.index_strings (Wal.fold_sources corpus_sources update_ops))
            (Wal.replay (base_index ()) log.Wal.records));
      (* a reopened writer continues the sequence *)
      let w2 = Wal.open_writer ~dir ~generation:1 () in
      Alcotest.(check int) "records survive reopen" 3 (Wal.wal_records w2);
      Alcotest.(check int) "sequence continues" 4 (Wal.next_seq w2);
      let r = Wal.append w2 (Wal.Remove_doc "c.xml") in
      Alcotest.(check int) "next sequence assigned" 4 r.Wal.seq)

let test_stale_log_ignored () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      ignore (Wal.append w (List.hd update_ops));
      (* a compaction moved the snapshot on: the old log is stale *)
      (match Wal.read_log ~dir () with
      | Some log -> Alcotest.(check int) "old base" 1 log.Wal.base_generation
      | None -> Alcotest.fail "log missing");
      let w2 = Wal.open_writer ~dir ~generation:2 () in
      Alcotest.(check int) "stale log reset" 0 (Wal.wal_records w2);
      Alcotest.(check int) "writer on the new generation" 2
        (Wal.writer_generation w2);
      match Wal.read_log ~dir () with
      | Some log -> Alcotest.(check int) "new base" 2 log.Wal.base_generation
      | None -> Alcotest.fail "reset log missing")

(* --- 3. torn tails, mid-log corruption, version bumps --- *)

let wal_file dir = Filename.concat dir Wal.wal_name

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)

let test_torn_tail_truncated_silently () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      ignore (Wal.append w (List.nth update_ops 0));
      ignore (Wal.append w (List.nth update_ops 1));
      let two = Wal.wal_bytes w in
      ignore (Wal.append w (List.nth update_ops 2));
      let three = Wal.wal_bytes w in
      Alcotest.(check int) "writer tracks the file size" three
        (file_size (wal_file dir));
      (* every way the third append can tear: from one byte in to one
         byte short of complete *)
      List.iter
        (fun cut ->
          Test_store.truncate_file (wal_file dir) cut;
          match Wal.read_log ~dir () with
          | None -> Alcotest.failf "cut@%d: log unreadable" cut
          | Some log ->
              Alcotest.(check bool)
                (Printf.sprintf "cut@%d: tear detected" cut)
                true log.Wal.truncated;
              Alcotest.(check int)
                (Printf.sprintf "cut@%d: prefix records survive" cut)
                2
                (List.length log.Wal.records);
              Alcotest.(check int)
                (Printf.sprintf "cut@%d: valid prefix" cut)
                two log.Wal.valid_bytes)
        [ two + 1; two + 4; two + 9; three - 1 ];
      (* reopening truncates the torn tail physically and appends cleanly *)
      Test_store.truncate_file (wal_file dir) (three - 1);
      let w2 = Wal.open_writer ~dir ~generation:1 () in
      Alcotest.(check int) "tail dropped on reopen" two
        (file_size (wal_file dir));
      Alcotest.(check int) "reopen continues after record 2" 3 (Wal.next_seq w2);
      ignore (Wal.append w2 (List.nth update_ops 2));
      match Wal.read_log ~dir () with
      | Some log ->
          Alcotest.(check bool) "clean after re-append" false log.Wal.truncated;
          Alcotest.(check int) "three records again" 3
            (List.length log.Wal.records)
      | None -> Alcotest.fail "log unreadable after re-append")

let expect_code name code f =
  match f () with
  | _ -> Alcotest.failf "%s: unexpectedly succeeded" name
  | exception Xquery.Errors.Error e ->
      Alcotest.(check string)
        name
        (Xquery.Errors.code_string code)
        (Xquery.Errors.code_string e.Xquery.Errors.code)

let test_midlog_corruption_is_gtlx0010 () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      let header = Wal.wal_bytes w in
      ignore (Wal.append w (List.nth update_ops 0));
      ignore (Wal.append w (List.nth update_ops 1));
      (* flip a byte inside record 1 — NOT the tail, so this cannot be
         mistaken for a torn append *)
      Test_store.patch_file (wal_file dir) (header + 12) (fun c ->
          Char.chr (Char.code c lxor 0x08));
      expect_code "mid-log flip" Xquery.Errors.GTLX0010 (fun () ->
          Wal.read_log ~dir ());
      expect_code "open_writer refuses to destroy a corrupt log"
        Xquery.Errors.GTLX0010 (fun () -> Wal.open_writer ~dir ~generation:1 ());
      expect_code "of_store surfaces it" Xquery.Errors.GTLX0010 (fun () ->
          Galatex.Engine.of_store ~dir ()))

(* a crafted header with a bumped version (checksums valid, so this is a
   format skew, not corruption) — also pins the frame layout: if the codec
   drifts, this test fails before any cross-version deployment would *)
let test_version_mismatch_is_gtlx0007 () =
  let put_u32 v =
    String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))
  in
  let frame payload =
    let len = put_u32 (String.length payload) in
    len ^ put_u32 (Store.crc32 len) ^ payload ^ put_u32 (Store.crc32 payload)
  in
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let header =
        Wal.wal_magic ^ put_u32 (Wal.wal_version + 1) ^ put_u32 1
      in
      let oc = open_out_bin (wal_file dir) in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (frame header));
      expect_code "future log version" Xquery.Errors.GTLX0007 (fun () ->
          Wal.read_log ~dir ()))

(* --- engine-level recovery: snapshot + WAL across a cold start --- *)

let test_of_store_replays_and_reports () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      ignore (Wal.append w (List.nth update_ops 0));
      ignore (Wal.append w (List.nth update_ops 1));
      ignore (Wal.append w (List.nth update_ops 2));
      (* tear the third record: only the first two were made durable *)
      Test_store.truncate_file (wal_file dir) (Wal.wal_bytes w - 3);
      let engine = Galatex.Engine.of_store ~dir () in
      (match Galatex.Engine.wal_recovery engine with
      | Some r ->
          Alcotest.(check int) "two records replayed" 2
            r.Galatex.Engine.replayed;
          Alcotest.(check bool) "tear reported" true
            r.Galatex.Engine.truncated_tail
      | None -> Alcotest.fail "wal_recovery missing");
      check_same "recovered index = reindex of the acknowledged prefix"
        (Indexer.index_strings
           (Wal.fold_sources corpus_sources (take 2 update_ops)))
        (Galatex.Engine.index engine);
      (* a compaction folds the replayed state into generation 2 *)
      let engine = Galatex.Engine.compact engine ~dir in
      Alcotest.(check (option int))
        "compacted generation" (Some 2)
        (Galatex.Engine.generation engine);
      (match Wal.read_log ~dir () with
      | Some log ->
          Alcotest.(check int) "log reset onto the new base" 2
            log.Wal.base_generation;
          Alcotest.(check int) "log empty" 0 (List.length log.Wal.records)
      | None -> Alcotest.fail "log missing after compaction");
      let reloaded = Galatex.Engine.of_store ~dir () in
      Alcotest.(check bool) "no replay needed after compaction" true
        (match Galatex.Engine.wal_recovery reloaded with
        | None | Some { Galatex.Engine.replayed = 0; truncated_tail = false }
          ->
            true
        | Some _ -> false);
      check_same "compacted snapshot is exact"
        (Indexer.index_strings
           (Wal.fold_sources corpus_sources (take 2 update_ops)))
        (Galatex.Engine.index reloaded))

(* --- 4. fault sweeps: every I/O op of append / recovery / compact --- *)

(* salvage sources covering both generations a recovery might land on *)
let all_sources =
  Wal.fold_sources corpus_sources update_ops @ corpus_sources

let check_recovery ~name ~candidates dir =
  match Galatex.Engine.of_store ~sources:all_sources ~dir () with
  | engine ->
      Alcotest.(check bool)
        (name ^ ": recovered index = an acknowledged prefix")
        true
        (List.exists
           (fun c -> index_eq c (Galatex.Engine.index engine))
           candidates)
  | exception Xquery.Errors.Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: structured error (got %s)" name
           (Xquery.Errors.code_string e.Xquery.Errors.code))
        true (structured e)
  | exception exn ->
      Alcotest.failf "%s: raw exception escaped recovery: %s" name
        (Printexc.to_string exn)

let count_append_ops () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let io = Store.Io.real () in
      let w = Wal.open_writer ~io ~dir ~generation:1 () in
      List.iter (fun op -> ignore (Wal.append w op)) update_ops;
      Store.Io.ops io)

let test_append_fault_sweep () =
  let candidates = prefix_indexes corpus_sources update_ops in
  let total = count_append_ops () in
  Alcotest.(check bool) "append path performs several ops" true (total > 6);
  for at = 1 to total do
    List.iter
      (fun (fname, fault) ->
        let name = Printf.sprintf "append %s@%d" fname at in
        with_dir (fun dir ->
            Store.save ~dir (base_index ());
            let io = Store.Io.with_fault ~at fault in
            (match
               let w = Wal.open_writer ~io ~dir ~generation:1 () in
               List.iter (fun op -> ignore (Wal.append w op)) update_ops
             with
            | () -> ()
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: structured append error (got %s)" name
                     (Xquery.Errors.code_string e.Xquery.Errors.code))
                  true (structured e)
            | exception Store.Io.Crashed -> () (* simulated process death *)
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped append: %s" name
                  (Printexc.to_string exn));
            check_recovery ~name ~candidates dir))
      faults
  done

let test_recovery_read_fault_sweep () =
  let candidates = prefix_indexes corpus_sources update_ops in
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      List.iter (fun op -> ignore (Wal.append w op)) update_ops;
      let io = Store.Io.real () in
      ignore (Wal.read_log ~io ~dir ());
      let total = Store.Io.ops io in
      Alcotest.(check bool) "read performs ops" true (total >= 1);
      for at = 1 to total do
        List.iter
          (fun (fname, fault) ->
            let name = Printf.sprintf "recovery %s@%d" fname at in
            match Wal.read_log ~io:(Store.Io.with_fault ~at fault) ~dir () with
            | None ->
                (* a fully-torn read: an empty log is the acknowledged
                   prefix of length 0 *)
                ()
            | Some log ->
                let recovered =
                  Wal.replay (base_index ()) log.Wal.records
                in
                Alcotest.(check bool)
                  (name ^ ": replayed prefix exact")
                  true
                  (List.exists (index_eq recovered) candidates)
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: structured error (got %s)" name
                     (Xquery.Errors.code_string e.Xquery.Errors.code))
                  true (structured e)
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped read_log: %s" name
                  (Printexc.to_string exn))
          faults
      done)

let count_compact_ops () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      List.iter (fun op -> ignore (Wal.append w op)) update_ops;
      let engine = Galatex.Engine.of_store ~dir () in
      let io = Store.Io.real () in
      ignore (Galatex.Engine.compact ~io engine ~dir);
      Store.Io.ops io)

let test_compact_fault_sweep () =
  (* compaction must never lose an acknowledged update: whatever op dies,
     recovery yields the FULL updated index (from the old snapshot + log,
     or from the new snapshot) or a structured error — prefixes are not
     acceptable here *)
  let full =
    Indexer.index_strings (Wal.fold_sources corpus_sources update_ops)
  in
  let total = count_compact_ops () in
  Alcotest.(check bool) "compact performs several ops" true (total > 8);
  for at = 1 to total do
    List.iter
      (fun (fname, fault) ->
        let name = Printf.sprintf "compact %s@%d" fname at in
        with_dir (fun dir ->
            Store.save ~dir (base_index ());
            let w = Wal.open_writer ~dir ~generation:1 () in
            List.iter (fun op -> ignore (Wal.append w op)) update_ops;
            let engine = Galatex.Engine.of_store ~dir () in
            (match
               Galatex.Engine.compact
                 ~io:(Store.Io.with_fault ~at fault)
                 engine ~dir
             with
            | _ -> ()
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: structured compact error (got %s)" name
                     (Xquery.Errors.code_string e.Xquery.Errors.code))
                  true (structured e)
            | exception Store.Io.Crashed -> ()
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped compact: %s" name
                  (Printexc.to_string exn));
            check_recovery ~name ~candidates:[ full ] dir))
      faults
  done

(* --- 5. fencing epoch: sealing, regression refusal, monotonicity ---

   The failover contract at the storage layer: a promotion bumps the
   manifest epoch first, then seals the log onto it; a crash in between
   leaves the manifest ahead, which the next open_writer heals by
   sealing.  A writer must never append on a superseded timeline. *)

let test_seal_preserves_records () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      List.iter (fun op -> ignore (Wal.append w op)) update_ops;
      Alcotest.(check int) "writer starts on epoch 1" 1 (Wal.writer_epoch w);
      (* promotion order: manifest first, then the log *)
      Store.bump_epoch ~dir ~epoch:4 ();
      Wal.seal ~dir ~generation:1 ~epoch:4 ();
      (match Wal.read_log ~dir () with
      | None -> Alcotest.fail "sealed log vanished"
      | Some log ->
          Alcotest.(check int) "sealed epoch" 4 log.Wal.base_epoch;
          Alcotest.(check int)
            "records preserved" (List.length update_ops)
            (List.length log.Wal.records);
          check_same "replay after seal is exact"
            (List.fold_left Wal.apply (base_index ())
               (List.map (fun r -> r.Wal.op) log.Wal.records))
            (List.fold_left Wal.apply (base_index ()) update_ops));
      (* the default open_writer epoch is the manifest's: it adopts *)
      let w2 = Wal.open_writer ~dir ~generation:1 () in
      Alcotest.(check int) "reopened on the sealed epoch" 4 (Wal.writer_epoch w2);
      (* crash between bump and seal: the manifest is ahead; the next
         open_writer seals the log up to it, keeping every record *)
      Store.bump_epoch ~dir ~epoch:6 ();
      let w3 = Wal.open_writer ~dir ~generation:1 () in
      Alcotest.(check int) "healed onto the manifest epoch" 6
        (Wal.writer_epoch w3);
      match Wal.read_log ~dir () with
      | None -> Alcotest.fail "healed log vanished"
      | Some log ->
          Alcotest.(check int) "healed header" 6 log.Wal.base_epoch;
          Alcotest.(check int)
            "healing kept the records" (List.length update_ops)
            (List.length log.Wal.records))

let test_epoch_regression_refused () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      Store.bump_epoch ~dir ~epoch:5 ();
      let w = Wal.open_writer ~dir ~generation:1 () in
      ignore (Wal.append w (List.hd update_ops));
      (* an old primary reopening its log below the sealed epoch *)
      (match Wal.open_writer ~dir ~generation:1 ~epoch:3 () with
      | _ -> Alcotest.fail "writer accepted a superseded epoch"
      | exception Xquery.Errors.Error e ->
          Alcotest.(check string)
            "stale writer refused" "gtlx:GTLX0013"
            (Xquery.Errors.code_string e.Xquery.Errors.code));
      (* and a stale sealer is the stale party too *)
      match Wal.seal ~dir ~generation:1 ~epoch:3 () with
      | () -> Alcotest.fail "seal accepted a superseded epoch"
      | exception Xquery.Errors.Error e ->
          Alcotest.(check string)
            "stale seal refused" "gtlx:GTLX0013"
            (Xquery.Errors.code_string e.Xquery.Errors.code))

let count_seal_ops () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      List.iter (fun op -> ignore (Wal.append w op)) update_ops;
      let io = Store.Io.real () in
      Wal.seal ~io ~dir ~generation:1 ~epoch:4 ();
      Store.Io.ops io)

let test_seal_fault_sweep () =
  (* a faulted seal leaves the log on the old epoch or the new one, or
     fails structurally — never a half-stamped timeline, never a raw
     exception.  The surviving records are some acknowledged prefix (a
     torn read models a tail that was never durable, exactly like the
     append sweep); a clean read preserves every record, which
     test_seal_preserves_records pins separately. *)
  let candidates = prefix_indexes corpus_sources update_ops in
  let total = count_seal_ops () in
  Alcotest.(check bool) "seal performs several ops" true (total > 2);
  for at = 1 to total do
    List.iter
      (fun (fname, fault) ->
        let name = Printf.sprintf "seal %s@%d" fname at in
        with_dir (fun dir ->
            Store.save ~dir (base_index ());
            let w = Wal.open_writer ~dir ~generation:1 () in
            List.iter (fun op -> ignore (Wal.append w op)) update_ops;
            (match
               Wal.seal
                 ~io:(Store.Io.with_fault ~at fault)
                 ~dir ~generation:1 ~epoch:4 ()
             with
            | () -> ()
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: structured seal error (got %s)" name
                     (Xquery.Errors.code_string e.Xquery.Errors.code))
                  true (structured e)
            | exception Store.Io.Crashed -> ()
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped seal: %s" name
                  (Printexc.to_string exn));
            match Wal.read_log ~dir () with
            | Some log ->
                Alcotest.(check bool)
                  (name ^ ": old or new epoch, never torn")
                  true
                  (log.Wal.base_epoch = 1 || log.Wal.base_epoch = 4);
                let recovered = Wal.replay (base_index ()) log.Wal.records in
                Alcotest.(check bool)
                  (name ^ ": recovered index = an acknowledged prefix")
                  true
                  (List.exists (index_eq recovered) candidates)
            | None -> ()
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: structured read error (got %s)" name
                     (Xquery.Errors.code_string e.Xquery.Errors.code))
                  true (structured e)
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped read_log: %s" name
                  (Printexc.to_string exn)))
      faults
  done

(* qcheck: under any program of bumps, resaves and writer reopens, the
   observed epoch never decreases, regressions always refuse with
   GTLX0013, and a default writer always lands on the manifest epoch *)
type epoch_action = Bump of int | Resave | Reopen

let prop_epoch_monotone =
  let open QCheck2 in
  let gen_action =
    Gen.oneof
      [
        Gen.map (fun e -> Bump e) (Gen.int_range 1 12);
        Gen.return Resave;
        Gen.return Reopen;
      ]
  in
  Test.make ~name:"fencing epoch is monotone" ~count:30
    (Gen.list_size (Gen.int_range 1 10) gen_action)
    (fun actions ->
      with_dir (fun dir ->
          Store.save ~dir (base_index ());
          let model = ref 1 in
          List.iter
            (fun action ->
              (match action with
              | Bump e -> (
                  match Store.bump_epoch ~dir ~epoch:e () with
                  | () ->
                      if e < !model then
                        Test.fail_reportf
                          "regression to %d accepted at epoch %d" e !model;
                      model := max !model e
                  | exception Xquery.Errors.Error err ->
                      if
                        not
                          (e < !model
                          && err.Xquery.Errors.code = Xquery.Errors.GTLX0013)
                      then
                        Test.fail_reportf "bump to %d at %d failed with %s" e
                          !model
                          (Xquery.Errors.code_string err.Xquery.Errors.code))
              | Resave -> Store.save ~dir (base_index ())
              | Reopen ->
                  let w = Wal.open_writer ~dir ~generation:1 () in
                  if Wal.writer_epoch w <> !model then
                    Test.fail_reportf "writer epoch %d, manifest epoch %d"
                      (Wal.writer_epoch w) !model);
              match Store.current_epoch ~dir with
              | Some e when e = !model -> ()
              | e ->
                  Test.fail_reportf "manifest epoch %s, model %d"
                    (match e with
                    | None -> "unreadable"
                    | Some v -> string_of_int v)
                    !model)
            actions;
          true))

(* --- 6. wire shipping: the replication transfer path ---

   A primary ships acknowledged records framed exactly as on disk
   ([encode_records]); a follower decodes them ([decode_records]) and
   filters them against its own applied position ([select_fresh]).  The
   contract: replaying any shuffled-with-duplicates prefix of the
   acknowledged records either converges to the in-order replay state of
   some prefix, or is rejected with GTLX0010 — never silent divergence. *)

let records_of ops = List.mapi (fun i op -> { Wal.seq = i + 1; op }) ops

let test_shipping_roundtrip () =
  let records = records_of update_ops in
  let decoded = Wal.decode_records (Wal.encode_records records) in
  Alcotest.(check bool) "records survive the wire" true (decoded = records);
  Alcotest.(check bool) "empty ship" true (Wal.decode_records "" = []);
  (* a torn wire transfer is a protocol error, not a local torn tail:
     the primary only ships acknowledged records, so missing bytes mean
     corruption — reject, never silently drop *)
  let frames = Wal.encode_records records in
  (match Wal.decode_records (String.sub frames 0 (String.length frames - 3)) with
  | _ -> Alcotest.fail "torn wire frames accepted"
  | exception Xquery.Errors.Error e ->
      Alcotest.(check string)
        "torn wire is GTLX0010" "gtlx:GTLX0010"
        (Xquery.Errors.code_string e.Xquery.Errors.code));
  (* flipped payload byte: checksum catches it *)
  let corrupt = Bytes.of_string frames in
  Bytes.set corrupt (Bytes.length corrupt - 5) '\xff';
  match Wal.decode_records (Bytes.to_string corrupt) with
  | _ -> Alcotest.fail "corrupt wire frames accepted"
  | exception Xquery.Errors.Error e ->
      Alcotest.(check string)
        "corrupt wire is GTLX0010" "gtlx:GTLX0010"
        (Xquery.Errors.code_string e.Xquery.Errors.code)

let test_select_fresh () =
  let records = records_of update_ops in
  (* duplicates below the applied position are skipped idempotently *)
  Alcotest.(check bool)
    "skips applied prefix" true
    (Wal.select_fresh ~applied:2 records
    = List.filter (fun r -> r.Wal.seq > 2) records);
  Alcotest.(check bool)
    "everything applied -> nothing fresh" true
    (Wal.select_fresh ~applied:(List.length records) records = []);
  Alcotest.(check bool)
    "redelivered batch with internal duplicates" true
    (Wal.select_fresh ~applied:0 (List.hd records :: records) = records);
  (* a gap is never bridged: rejection, not silent divergence *)
  match Wal.select_fresh ~applied:0 (List.filter (fun r -> r.Wal.seq <> 2) records) with
  | _ -> Alcotest.fail "sequence gap accepted"
  | exception Xquery.Errors.Error e ->
      Alcotest.(check string)
        "gap is GTLX0010" "gtlx:GTLX0010"
        (Xquery.Errors.code_string e.Xquery.Errors.code)

let prop_shipping_convergence =
  let gen =
    let open QCheck2.Gen in
    let* ops = gen_ops in
    let records = records_of ops in
    let n = List.length records in
    let* k = int_range 0 n in
    let prefix = List.filteri (fun i _ -> i < k) records in
    let* dups =
      if k = 0 then return []
      else
        let* idx = list_size (int_range 0 3) (int_range 0 (k - 1)) in
        return (List.map (fun i -> List.nth prefix i) idx)
    in
    let* delivered = shuffle_l (prefix @ dups) in
    return (records, delivered)
  in
  QCheck2.Test.make
    ~name:"shipped replay converges or rejects — never diverges" ~count:60 gen
    (fun (records, delivered) ->
      match
        Wal.select_fresh ~applied:0
          (Wal.decode_records (Wal.encode_records delivered))
      with
      | exception Xquery.Errors.Error e ->
          (* rejected: must be the structured unreplayable code *)
          e.Xquery.Errors.code = Xquery.Errors.GTLX0010
      | fresh ->
          (* accepted: exactly records 1..m in order, and replaying them
             is bit-identical to the in-order replay of that prefix *)
          let m = List.length fresh in
          List.map (fun r -> r.Wal.seq) fresh = List.init m (fun i -> i + 1)
          && index_eq
               (Wal.replay (base_index ()) fresh)
               (Wal.replay (base_index ())
                  (List.filteri (fun i _ -> i < m) records)))

(* query-level spot check on top of the structural sweeps: a post-crash
   engine answers the use-case query exactly like a from-scratch index *)
let test_query_cross_check_after_recovery () =
  with_dir (fun dir ->
      Store.save ~dir (base_index ());
      let w = Wal.open_writer ~dir ~generation:1 () in
      List.iter (fun op -> ignore (Wal.append w op)) update_ops;
      let recovered = Galatex.Engine.of_store ~sources:all_sources ~dir () in
      let scratch =
        Galatex.Engine.of_strings (Wal.fold_sources corpus_sources update_ops)
      in
      List.iter
        (fun q ->
          Alcotest.(check string)
            (Printf.sprintf "recovered answers %s identically" q)
            (Xquery.Value.to_display_string (Galatex.Engine.run scratch q))
            (Xquery.Value.to_display_string (Galatex.Engine.run recovered q)))
        [
          Test_store.usecase_query;
          {|//title[. ftcontains "zebra"]|};
          {|//book[. ftcontains "usability" && "testing"]/title|};
        ])

let tests =
  [
    Alcotest.test_case "apply is exact" `Quick test_apply_exact;
    QCheck_alcotest.to_alcotest prop_apply_exact;
    Alcotest.test_case "writer round trip" `Quick test_writer_roundtrip;
    Alcotest.test_case "stale log ignored" `Quick test_stale_log_ignored;
    Alcotest.test_case "torn tail truncated silently" `Quick
      test_torn_tail_truncated_silently;
    Alcotest.test_case "mid-log corruption (GTLX0010)" `Quick
      test_midlog_corruption_is_gtlx0010;
    Alcotest.test_case "log version mismatch (GTLX0007)" `Quick
      test_version_mismatch_is_gtlx0007;
    Alcotest.test_case "of_store replays and reports" `Quick
      test_of_store_replays_and_reports;
    Alcotest.test_case "append fault sweep" `Slow test_append_fault_sweep;
    Alcotest.test_case "recovery read fault sweep" `Quick
      test_recovery_read_fault_sweep;
    Alcotest.test_case "compact fault sweep" `Slow test_compact_fault_sweep;
    Alcotest.test_case "query cross-check after recovery" `Quick
      test_query_cross_check_after_recovery;
    Alcotest.test_case "seal preserves records" `Quick
      test_seal_preserves_records;
    Alcotest.test_case "epoch regression refused (GTLX0013)" `Quick
      test_epoch_regression_refused;
    Alcotest.test_case "seal fault sweep" `Slow test_seal_fault_sweep;
    QCheck_alcotest.to_alcotest prop_epoch_monotone;
    Alcotest.test_case "shipping round trip" `Quick test_shipping_roundtrip;
    Alcotest.test_case "select fresh (duplicates, gaps)" `Quick
      test_select_fresh;
    QCheck_alcotest.to_alcotest prop_shipping_convergence;
  ]
