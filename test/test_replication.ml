(* The WAL-shipping replication contract:

   1. wire pulls are exact: [Fetch_wal] ships acknowledged records past
      the requested position framed exactly as on disk, [Fetch_snapshot]
      transfers the base snapshot byte-for-byte (CRC-checked listing,
      per-file transfers, traversal-proof names);
   2. a follower bootstraps an empty directory from its primary, tails
      the primary's log every tick and applies it durable-first: after
      quiescence its (generation, seq, manifest CRC) triple equals the
      primary's and it answers queries identically;
   3. a follower is read-only: updates and compactions are rejected with
      a structured error, never applied;
   4. a primary compaction moves the base generation; the follower
      detects the mismatch and re-syncs the full snapshot;
   5. anti-entropy: a follower whose snapshot diverges from its
      primary's at the same generation (seeded from a different corpus)
      detects the manifest-CRC mismatch and repairs itself;
   6. convergence chaos: primary + two followers under a concurrent
      update stream, with the primary killed and restarted mid-stream
      and a compaction thrown in — both followers converge to the
      primary's exact (generation, seq, manifest CRC) and answer
      queries identically.

   Everything runs in-process: Server.start per daemon, Server.stop /
   Server.start as the kill/restart hammer. *)

open Galatex_server

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_name "rep-scratch" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let rec poll ?(tries = 250) msg f =
  if f () then ()
  else if tries = 0 then Alcotest.failf "timeout waiting for %s" msg
  else begin
    Thread.delay 0.02;
    poll ~tries:(tries - 1) msg f
  end

(* --- fixtures --- *)

let corpus =
  List.init 4 (fun i ->
      ( Printf.sprintf "doc%d.xml" i,
        Printf.sprintf
          "<book><title>Book %d</title><p>the usability of web site number \
           %d</p></book>"
          i i ))

let other_corpus =
  [ ("doc0.xml", "<book><title>Diverged</title><p>zebra quokka</p></book>") ]

let save_corpus ~dir sources =
  Ftindex.Store.save ~dir (Ftindex.Indexer.index_strings sources)

let add_doc i =
  Ftindex.Wal.Add_doc
    {
      uri = Printf.sprintf "new%d.xml" i;
      source =
        Printf.sprintf
          "<book><title>Update %d</title><p>usability update number %d</p></book>"
          i i;
    }

let count_query = "count(collection()//book)"
let titles_query = "collection()//book/title"

let daemon_config ?follow ~dir ~sock () =
  {
    (Server.default_config ~index_dir:dir ~socket_path:sock) with
    Server.workers = 2;
    tick_interval = 0.02;
    follow;
  }

(* primary + one follower, the follower's directory prepared by [seed] *)
let with_pair ?(seed = fun _fdir -> ()) () f =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let pdir = Filename.concat dir "primary" in
      let fdir = Filename.concat dir "follower" in
      save_corpus ~dir:pdir corpus;
      seed fdir;
      let psock = fresh_name "rp" ^ ".sock" in
      let fsock = fresh_name "rf" ^ ".sock" in
      let primary = Server.start (daemon_config ~dir:pdir ~sock:psock ()) in
      Fun.protect
        ~finally:(fun () -> Server.stop primary)
        (fun () ->
          let follower =
            Server.start
              (daemon_config ~follow:psock ~dir:fdir ~sock:fsock ())
          in
          Fun.protect
            ~finally:(fun () -> Server.stop follower)
            (fun () -> f ~pdir ~fdir ~psock ~fsock)))

let ok what = function
  | Ok v -> v
  | Error reason -> Alcotest.failf "%s: %s" what reason

let value_of what = function
  | Ok (Protocol.Value v) -> v
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "%s: unexpected failure %s: %s" what e.Protocol.code
        e.Protocol.message
  | Ok _ -> Alcotest.failf "%s: unexpected reply kind" what
  | Error reason -> Alcotest.failf "%s: transport error %s" what reason

let query sock text =
  value_of text
    (Client.request ~socket_path:sock
       (Protocol.Query (Protocol.query_request text)))

let update sock ops =
  match Client.request ~socket_path:sock (Protocol.Update { ops; epoch = 0 }) with
  | Ok (Protocol.Update_reply u) -> u
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "update: unexpected failure %s: %s" e.Protocol.code
        e.Protocol.message
  | Ok _ -> Alcotest.fail "update: unexpected reply kind"
  | Error reason -> Alcotest.failf "update: transport error %s" reason

let health sock = ok "health" (Client.health ~socket_path:sock ())

let stat sock key =
  match
    List.assoc_opt key (ok "stats" (Client.stats ~socket_path:sock ())).Protocol.counters
  with
  | Some v -> v
  | None -> Alcotest.failf "stats counter %s missing" key

(* the convergence criterion everywhere below: same base generation,
   same applied sequence, same snapshot bytes (manifest CRC) *)
let converged psock fsock =
  let p = health psock and f = health fsock in
  p.Protocol.h_generation = f.Protocol.h_generation
  && p.Protocol.h_seq = f.Protocol.h_seq
  && p.Protocol.h_manifest_crc = f.Protocol.h_manifest_crc

let check_same_answers ~what psock fsock =
  List.iter
    (fun q ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s: %s answers identically" what q)
        (query psock q).Protocol.items (query fsock q).Protocol.items)
    [ count_query; titles_query ]

(* ------------------------------------------------------------------ *)
(* 1. wire pulls                                                       *)

let test_fetch_wal_over_wire () =
  with_dir (fun dir ->
      save_corpus ~dir corpus;
      let sock = fresh_name "rw" ^ ".sock" in
      let t = Server.start (daemon_config ~dir ~sock ()) in
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () ->
          let ops = List.init 5 add_doc in
          ignore (update sock ops);
          let w = ok "fetch_wal" (Client.fetch_wal ~socket_path:sock ~from_seq:0 ()) in
          Alcotest.(check int) "base generation" 1 w.Protocol.w_generation;
          Alcotest.(check int) "last seq" 5 w.Protocol.w_last_seq;
          let records = Ftindex.Wal.decode_records w.Protocol.w_frames in
          Alcotest.(check (list int))
            "dense sequence" [ 1; 2; 3; 4; 5 ]
            (List.map (fun r -> r.Ftindex.Wal.seq) records);
          Alcotest.(check bool)
            "ops survive the wire" true
            (List.map (fun r -> r.Ftindex.Wal.op) records = ops);
          (* a follower that already applied 3 pulls only the tail *)
          let tail = ok "tail" (Client.fetch_wal ~socket_path:sock ~from_seq:3 ()) in
          Alcotest.(check (list int))
            "tail only" [ 4; 5 ]
            (List.map
               (fun r -> r.Ftindex.Wal.seq)
               (Ftindex.Wal.decode_records tail.Protocol.w_frames));
          let none = ok "none" (Client.fetch_wal ~socket_path:sock ~from_seq:5 ()) in
          Alcotest.(check string) "caught up: empty" "" none.Protocol.w_frames))

let test_fetch_snapshot_over_wire () =
  with_dir (fun dir ->
      save_corpus ~dir corpus;
      let sock = fresh_name "rs" ^ ".sock" in
      let t = Server.start (daemon_config ~dir ~sock ()) in
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () ->
          let listing =
            ok "listing" (Client.fetch_snapshot ~socket_path:sock ())
          in
          Alcotest.(check int) "generation" 1 listing.Protocol.sn_generation;
          Alcotest.(check (option int))
            "advertised CRC is the on-disk manifest CRC"
            (Ftindex.Store.manifest_crc ~dir)
            (Some listing.Protocol.sn_manifest_crc);
          Alcotest.(check bool) "listing reply has no data" true
            (listing.Protocol.sn_data = None);
          (match listing.Protocol.sn_files with
          | m :: _ -> Alcotest.(check string) "manifest first" "MANIFEST" m
          | [] -> Alcotest.fail "empty listing");
          (* every listed file transfers byte-for-byte *)
          List.iter
            (fun name ->
              let r =
                ok name (Client.fetch_snapshot ~socket_path:sock ~file:name ())
              in
              let on_disk =
                let ic = open_in_bin (Filename.concat dir name) in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s transfers byte-for-byte" name)
                true
                (r.Protocol.sn_data = Some on_disk))
            listing.Protocol.sn_files;
          (* unknown and traversal-shaped names are rejected, not read *)
          List.iter
            (fun bad ->
              match Client.fetch_snapshot ~socket_path:sock ~file:bad () with
              | Ok _ -> Alcotest.failf "served %s" bad
              | Error _ -> ())
            [ "nope.seg"; "../MANIFEST"; "/etc/passwd" ]))

(* ------------------------------------------------------------------ *)
(* 2-4. follower lifecycle                                             *)

let test_follower_bootstrap_and_catch_up () =
  with_pair () (fun ~pdir:_ ~fdir:_ ~psock ~fsock ->
      (* bootstrap: the follower pulled the primary's snapshot at start *)
      poll "bootstrap convergence" (fun () -> converged psock fsock);
      let h = health fsock in
      Alcotest.(check string) "role" "replica" h.Protocol.h_role;
      Alcotest.(check string) "primary role" "primary"
        (health psock).Protocol.h_role;
      check_same_answers ~what:"bootstrap" psock fsock;
      (* live catch-up: updates to the primary reach the follower *)
      let u = update psock (List.init 3 add_doc) in
      Alcotest.(check int) "primary acked" 3 u.Protocol.u_last_seq;
      poll "wal catch-up" (fun () -> converged psock fsock);
      check_same_answers ~what:"catch-up" psock fsock;
      Alcotest.(check bool) "wal_syncs counted" true (stat fsock "wal_syncs" >= 1);
      Alcotest.(check int) "3 records shipped" 3 (stat fsock "wal_sync_records");
      Alcotest.(check int) "no sync failures" 0 (stat fsock "sync_failures");
      (* the query reply advertises the exact position that answered *)
      let v = query fsock count_query in
      Alcotest.(check int) "reply seq" 3 v.Protocol.seq)

let test_follower_rejects_writes () =
  with_pair () (fun ~pdir:_ ~fdir:_ ~psock ~fsock ->
      poll "bootstrap" (fun () -> converged psock fsock);
      (match
         Client.request ~socket_path:fsock
           (Protocol.Update { ops = [ add_doc 0 ]; epoch = 0 })
       with
      | Ok (Protocol.Failure e) ->
          Alcotest.(check string) "update rejected" "err:FODC0002" e.Protocol.code
      | _ -> Alcotest.fail "follower accepted an update");
      match
        Client.request ~socket_path:fsock (Protocol.Compact { epoch = 0 })
      with
      | Ok (Protocol.Failure e) ->
          Alcotest.(check string) "compact rejected" "err:FODC0002" e.Protocol.code
      | _ -> Alcotest.fail "follower accepted a compaction")

let test_compaction_triggers_resync () =
  with_pair () (fun ~pdir:_ ~fdir:_ ~psock ~fsock ->
      poll "bootstrap" (fun () -> converged psock fsock);
      ignore (update psock (List.init 4 add_doc));
      poll "catch-up" (fun () -> converged psock fsock);
      (* fold the log: the base generation moves under the follower *)
      (match
         Client.request ~socket_path:psock (Protocol.Compact { epoch = 0 })
       with
      | Ok (Protocol.Compact_reply c) ->
          Alcotest.(check int) "generation moved" 2 c.Protocol.c_generation
      | _ -> Alcotest.fail "compact failed");
      poll "re-sync after compaction" (fun () -> converged psock fsock);
      Alcotest.(check int) "new base generation" 2
        (health fsock).Protocol.h_generation;
      Alcotest.(check bool) "snapshot re-sync counted" true
        (stat fsock "snapshot_resyncs" >= 1);
      check_same_answers ~what:"post-compaction" psock fsock)

let test_anti_entropy_repairs_divergence () =
  (* the follower starts over a snapshot saved from a different corpus at
     the same generation: only the manifest CRC betrays the divergence *)
  with_pair
    ~seed:(fun fdir -> save_corpus ~dir:fdir other_corpus)
    ()
    (fun ~pdir ~fdir ~psock ~fsock ->
      poll "anti-entropy repair" (fun () -> converged psock fsock);
      Alcotest.(check bool) "repair was a snapshot re-sync" true
        (stat fsock "snapshot_resyncs" >= 1);
      check_same_answers ~what:"repaired" psock fsock;
      (* bit-identical on disk, not just same answers *)
      Alcotest.(check (option int))
        "manifest CRCs equal on disk"
        (Ftindex.Store.manifest_crc ~dir:pdir)
        (Ftindex.Store.manifest_crc ~dir:fdir))

(* ------------------------------------------------------------------ *)
(* 6. convergence chaos                                                *)

let test_convergence_chaos () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let pdir = Filename.concat dir "primary" in
      save_corpus ~dir:pdir corpus;
      let psock = fresh_name "rcp" ^ ".sock" in
      let pcfg = daemon_config ~dir:pdir ~sock:psock () in
      let primary = ref (Server.start pcfg) in
      let followers =
        List.init 2 (fun i ->
            let fdir = Filename.concat dir (Printf.sprintf "follower%d" i) in
            let fsock = fresh_name (Printf.sprintf "rcf%d" i) ^ ".sock" in
            (fsock, Server.start (daemon_config ~follow:psock ~dir:fdir ~sock:fsock ())))
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun (_, t) -> Server.stop t) followers;
          Server.stop !primary)
        (fun () ->
          (* stream updates; transport errors while the primary is down
             are expected — only acknowledged batches count *)
          let acked = Atomic.make 0 in
          let updater =
            Thread.create
              (fun () ->
                for i = 0 to 19 do
                  (match
                     Client.request ~recv_timeout:2.0 ~socket_path:psock
                       (Protocol.Update { ops = [ add_doc i ]; epoch = 0 })
                   with
                  | Ok (Protocol.Update_reply _) -> Atomic.incr acked
                  | Ok _ | Error _ -> ());
                  Thread.delay 0.01
                done)
              ()
          in
          (* kill -9 equivalent mid-stream: drop the daemon, restart it
             over the same directory — recovery replays the log *)
          Thread.delay 0.08;
          Server.stop !primary;
          Thread.delay 0.05;
          primary := Server.start pcfg;
          Thread.join updater;
          Alcotest.(check bool) "some updates were acknowledged" true
            (Atomic.get acked > 0);
          (* a compaction mid-life forces the snapshot re-sync path too *)
          (match Client.request ~socket_path:psock (Protocol.Compact { epoch = 0 }) with
          | Ok (Protocol.Compact_reply _) -> ()
          | _ -> Alcotest.fail "compact failed");
          List.iter
            (fun (fsock, _) ->
              poll ~tries:500 "chaos convergence" (fun () ->
                  converged psock fsock);
              check_same_answers ~what:"chaos" psock fsock)
            followers;
          (* both followers landed on the same bits *)
          match followers with
          | [ (f0, _); (f1, _) ] ->
              Alcotest.(check bool) "followers bit-identical" true
                (converged f0 f1)
          | _ -> assert false))

(* ------------------------------------------------------------------ *)
(* 7. failover: promotion, fencing, demotion                           *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_promote_over_wire () =
  with_pair () (fun ~pdir:_ ~fdir:_ ~psock ~fsock ->
      poll "bootstrap" (fun () -> converged psock fsock);
      (* the follower becomes primary on a strictly newer timeline *)
      let h = ok "promote" (Client.promote ~socket_path:fsock ~epoch:0 ()) in
      Alcotest.(check string) "flipped to primary" "primary" h.Protocol.h_role;
      Alcotest.(check int) "epoch advanced" 2 h.Protocol.h_epoch;
      (* writes stamped with the new epoch land on the new primary *)
      (match
         Client.request ~socket_path:fsock
           (Protocol.Update { ops = [ add_doc 0 ]; epoch = h.Protocol.h_epoch })
       with
      | Ok (Protocol.Update_reply u) ->
          Alcotest.(check int) "write carries new epoch" 2 u.Protocol.u_epoch
      | _ -> Alcotest.fail "new primary refused a fenced write");
      (* a writer still living on the old timeline is fenced off *)
      (match
         Client.request ~socket_path:fsock
           (Protocol.Update { ops = [ add_doc 1 ]; epoch = 1 })
       with
      | Ok (Protocol.Failure e) ->
          Alcotest.(check string) "stale write fenced" "gtlx:GTLX0013"
            e.Protocol.code
      | _ -> Alcotest.fail "stale-epoch write was not fenced");
      (* demotion must flow from a strictly newer timeline: the old
         primary shrugs off a demotion at its own epoch ... *)
      (match Client.demote ~socket_path:psock ~epoch:1 ~primary:fsock () with
      | Error reason ->
          Alcotest.(check bool) "stale demotion refused with GTLX0013" true
            (contains reason "GTLX0013")
      | Ok _ -> Alcotest.fail "accepted a demotion at its own epoch");
      (* ... and steps down for the epoch-2 one, re-syncing from it *)
      let d =
        ok "demote" (Client.demote ~socket_path:psock ~epoch:2 ~primary:fsock ())
      in
      Alcotest.(check string) "old primary now replica" "replica"
        d.Protocol.h_role;
      poll "old primary catches up on the new timeline" (fun () ->
          converged fsock psock);
      poll "old primary adopts the new epoch" (fun () ->
          (health psock).Protocol.h_epoch = 2);
      check_same_answers ~what:"after failover" fsock psock;
      Alcotest.(check bool) "promotion counted" true
        (stat fsock "promotions" >= 1);
      Alcotest.(check bool) "demotion counted" true (stat psock "demotions" >= 1))

(* The tentpole interleaving: primary + two followers under a fenced
   concurrent writer (stamps every update with the highest epoch it has
   observed, exactly like the router).  Kill the primary, promote the
   caught-up follower, restart the old primary on its stale timeline,
   fence it, demote it.  Acceptance: writes were acknowledged on both
   timelines but the timelines never diverged — every acknowledged write
   is present, bit-identically, on all three nodes at the end. *)
let test_failover_fencing_chaos () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let pdir = Filename.concat dir "primary" in
      save_corpus ~dir:pdir corpus;
      let psock = fresh_name "fcp" ^ ".sock" in
      let pcfg = daemon_config ~dir:pdir ~sock:psock () in
      let primary = ref (Server.start pcfg) in
      let mk_follower i =
        let fdir = Filename.concat dir (Printf.sprintf "follower%d" i) in
        let fsock = fresh_name (Printf.sprintf "fcf%d" i) ^ ".sock" in
        (fsock, Server.start (daemon_config ~follow:psock ~dir:fdir ~sock:fsock ()))
      in
      let f1sock, f1 = mk_follower 1 in
      let f2sock, f2 = mk_follower 2 in
      Fun.protect
        ~finally:(fun () ->
          Server.stop f1;
          Server.stop f2;
          Server.stop !primary)
        (fun () ->
          poll "bootstrap" (fun () ->
              converged psock f1sock && converged psock f2sock);
          let target = Atomic.make psock in
          let epoch_seen = Atomic.make 1 in
          let acked = Atomic.make [] in
          let paused = Atomic.make false in
          let stop = Atomic.make false in
          let updater =
            Thread.create
              (fun () ->
                let i = ref 0 in
                while not (Atomic.get stop) do
                  if Atomic.get paused then Thread.delay 0.01
                  else begin
                    (match
                       Client.request ~recv_timeout:5.0
                         ~socket_path:(Atomic.get target)
                         (Protocol.Update
                            {
                              ops = [ add_doc !i ];
                              epoch = Atomic.get epoch_seen;
                            })
                     with
                    | Ok (Protocol.Update_reply u) ->
                        Atomic.set acked
                          ((!i, u.Protocol.u_epoch) :: Atomic.get acked)
                    | Ok (Protocol.Failure e)
                      when e.Protocol.code = "gtlx:GTLX0013" ->
                        (* fenced: re-learn the epoch before retrying *)
                        (match
                           Client.health ~recv_timeout:5.0
                             ~socket_path:(Atomic.get target) ()
                         with
                        | Ok h ->
                            Atomic.set epoch_seen
                              (max (Atomic.get epoch_seen) h.Protocol.h_epoch)
                        | Error _ -> ())
                    | Ok _ | Error _ -> ());
                    incr i;
                    Thread.delay 0.005
                  end
                done)
              ()
          in
          let acked_at e =
            List.length (List.filter (fun (_, e') -> e' = e) (Atomic.get acked))
          in
          (* phase 1: writes flow on the original timeline *)
          poll "epoch-1 writes acknowledged" (fun () -> acked_at 1 >= 3);
          (* quiesce, let the failover candidate catch up fully, then
             kill -9 the primary: no in-flight write at the kill *)
          Atomic.set paused true;
          Thread.delay 0.05;
          poll "candidate caught up" (fun () -> converged psock f1sock);
          Server.stop !primary;
          (* promote past everything the writer has observed *)
          let h =
            ok "promote"
              (Client.promote ~socket_path:f1sock
                 ~epoch:(Atomic.get epoch_seen) ())
          in
          Alcotest.(check string) "new primary" "primary" h.Protocol.h_role;
          Alcotest.(check int) "new timeline" 2 h.Protocol.h_epoch;
          Atomic.set epoch_seen h.Protocol.h_epoch;
          Atomic.set target f1sock;
          Atomic.set paused false;
          (* phase 2: writes flow on the new timeline *)
          poll "epoch-2 writes acknowledged" (fun () -> acked_at 2 >= 3);
          (* the old primary comes back on its stale timeline *)
          primary := Server.start pcfg;
          (* a router-stamped (epoch-2) write against it is fenced, never
             acknowledged: no write lands on two divergent timelines *)
          (match
             Client.request ~socket_path:psock
               (Protocol.Update { ops = [ add_doc 999_999 ]; epoch = 2 })
           with
          | Ok (Protocol.Failure e) ->
              Alcotest.(check string) "restarted old primary is fenced"
                "gtlx:GTLX0013" e.Protocol.code
          | _ -> Alcotest.fail "stale restarted primary accepted a write");
          (* demote the straggler and re-point the second follower *)
          ignore
            (ok "demote old primary"
               (Client.demote ~socket_path:psock ~epoch:2 ~primary:f1sock ()));
          ignore
            (ok "re-point follower2"
               (Client.demote ~socket_path:f2sock ~epoch:2 ~primary:f1sock ()));
          Atomic.set stop true;
          Thread.join updater;
          (* convergence: all three nodes land on the new primary's bits *)
          poll ~tries:500 "old primary converges" (fun () ->
              converged f1sock psock);
          poll ~tries:500 "follower2 converges" (fun () ->
              converged f1sock f2sock);
          check_same_answers ~what:"failover chaos (old primary)" f1sock psock;
          check_same_answers ~what:"failover chaos (follower2)" f1sock f2sock;
          (* both timelines acknowledged writes, and none was lost: the
             final corpus is exactly the seed plus every acknowledged
             update — the fenced write left no trace *)
          let acked = Atomic.get acked in
          let epochs = List.sort_uniq compare (List.map snd acked) in
          Alcotest.(check (list int))
            "writes acknowledged on both timelines, never a third" [ 1; 2 ]
            epochs;
          let distinct = List.sort_uniq compare (List.map fst acked) in
          Alcotest.(check (list string))
            "every acknowledged write survived the failover"
            [ string_of_int (List.length corpus + List.length distinct) ]
            (query f1sock count_query).Protocol.items;
          Alcotest.(check bool) "old primary adopted the new epoch" true
            ((health psock).Protocol.h_epoch = 2)))

let tests =
  [
    Alcotest.test_case "fetch wal over the wire" `Quick test_fetch_wal_over_wire;
    Alcotest.test_case "fetch snapshot over the wire" `Quick
      test_fetch_snapshot_over_wire;
    Alcotest.test_case "follower bootstrap and catch-up" `Quick
      test_follower_bootstrap_and_catch_up;
    Alcotest.test_case "follower rejects writes" `Quick
      test_follower_rejects_writes;
    Alcotest.test_case "compaction triggers re-sync" `Quick
      test_compaction_triggers_resync;
    Alcotest.test_case "anti-entropy repairs divergence" `Quick
      test_anti_entropy_repairs_divergence;
    Alcotest.test_case "convergence chaos" `Quick test_convergence_chaos;
    Alcotest.test_case "promote over the wire" `Quick test_promote_over_wire;
    Alcotest.test_case "failover and fencing chaos" `Quick
      test_failover_fencing_chaos;
  ]
