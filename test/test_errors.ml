(* Error paths as API: every failure mode surfaces a structured
   Xquery.Errors.Error whose *code* (never the message) is the contract.
   One table drives malformed queries, undefined names, type mismatches,
   full-text errors and resource-limit violations through Engine.run. *)

open Galatex

let engine = lazy (Corpus.Usecases.engine ())

let code = Alcotest.testable (Fmt.of_to_string Xquery.Errors.code_string) ( = )

let run ?limits src = Engine.run (Lazy.force engine) ?limits src

let expect_code ?limits name expected src =
  match run ?limits src with
  | exception Xquery.Errors.Error e ->
      Alcotest.check code name expected e.Xquery.Errors.code
  | v ->
      Alcotest.failf "%s: expected %s, got value [%s]" name
        (Xquery.Errors.code_string expected)
        (Xquery.Value.to_display_string v)

(* --- the static / dynamic / type / full-text error table --- *)

let error_table =
  [
    (* static *)
    ("unclosed predicate", "//book[", Xquery.Errors.XPST0003);
    ("dangling for", "for $x in", Xquery.Errors.XPST0003);
    ("bad operator", "1 +", Xquery.Errors.XPST0003);
    ("undefined variable", "$no_such_variable", Xquery.Errors.XPST0008);
    ("unknown function", "no:such-function(1)", Xquery.Errors.XPST0017);
    ("wrong arity", "count()", Xquery.Errors.XPST0017);
    (* dynamic *)
    ("missing document", {|doc("missing.xml")|}, Xquery.Errors.FODC0002);
    ("zero-or-one violation", "zero-or-one((1, 2))", Xquery.Errors.FORG0003);
    ("one-or-more violation", "one-or-more(())", Xquery.Errors.FORG0004);
    ("exactly-one violation", "exactly-one((1, 2))", Xquery.Errors.FORG0005);
    ("invalid regex", {|matches("a", "(unclosed")|}, Xquery.Errors.FORX0002);
    (* type *)
    ("arith on sequence", "1 + (1, 2)", Xquery.Errors.XPTY0004);
    ("ebv of atomics", "if ((1, 2)) then 1 else 2", Xquery.Errors.XPTY0004);
    ("division by zero", "1 idiv 0", Xquery.Errors.FOAR0001);
    (* full text *)
    ( "weight above one",
      {|ft:score(//book, "usability" weight 3.0)|},
      Xquery.Errors.FTDY0016 );
    ( "negative weight",
      {|//book[. ftcontains "usability" weight -0.5]|},
      Xquery.Errors.FTDY0016 );
  ]

let test_error_table () =
  List.iter (fun (name, src, expected) -> expect_code name expected src) error_table

(* --- resource limits: each limit has its own code and terminates the
   query promptly instead of hanging / OOMing --- *)

let test_step_budget () =
  let limits = { Xquery.Limits.defaults with Xquery.Limits.max_steps = Some 100 } in
  expect_code ~limits "step budget" Xquery.Errors.GTLX0001
    "sum(for $i in 1 to 1000 return $i)";
  (* small queries stay under the same budget *)
  Alcotest.(check string)
    "under budget" "3"
    (Xquery.Value.to_display_string (run ~limits "1 + 2"))

let test_recursion_depth () =
  (* infinite recursion terminates with GTLX0002 under the *default*
     limits — no Stack_overflow, no hang *)
  expect_code "runaway recursion" Xquery.Errors.GTLX0002
    "declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)";
  let limits = { Xquery.Limits.defaults with Xquery.Limits.max_depth = Some 10 } in
  expect_code ~limits "depth limit" Xquery.Errors.GTLX0002
    "declare function local:f($n) { if ($n = 0) then 0 else local:f($n - 1) }; local:f(50)";
  Alcotest.(check string)
    "shallow recursion ok" "0"
    (Xquery.Value.to_display_string
       (run ~limits
          "declare function local:f($n) { if ($n = 0) then 0 else local:f($n - 1) }; local:f(5)"))

let test_materialization_limit () =
  let limits =
    { Xquery.Limits.defaults with Xquery.Limits.max_matches = Some 1000 }
  in
  expect_code ~limits "huge range" Xquery.Errors.GTLX0003 "1 to 100000000";
  expect_code ~limits "flwor cross product" Xquery.Errors.GTLX0003
    "for $a in 1 to 100 for $b in 1 to 100 return $a";
  (* the FTAnd cross-product bomb from the paper's Section 4 analysis *)
  expect_code
    ~limits:{ Xquery.Limits.defaults with Xquery.Limits.max_matches = Some 5 }
    "ftand materialization" Xquery.Errors.GTLX0003
    {|//book[. ftcontains "usability" && "software"]|};
  Alcotest.(check string)
    "small query under cap" "10"
    (Xquery.Value.to_display_string (run ~limits "count(1 to 10)"))

let test_timeout () =
  let limits = { Xquery.Limits.defaults with Xquery.Limits.timeout = Some 0.0 } in
  expect_code ~limits "expired deadline" Xquery.Errors.GTLX0004
    "sum(for $i in 1 to 100000 return $i)"

let test_limits_do_not_leak_between_runs () =
  (* each run gets a fresh governor: spending the budget once must not
     poison the next run *)
  let limits = { Xquery.Limits.defaults with Xquery.Limits.max_steps = Some 200 } in
  (match run ~limits "sum(for $i in 1 to 1000 return $i)" with
  | exception Xquery.Errors.Error _ -> ()
  | _ -> Alcotest.fail "budget should be exceeded");
  Alcotest.(check string)
    "fresh budget" "6"
    (Xquery.Value.to_display_string (run ~limits "1 + 2 + 3"))

let test_error_classes () =
  let open Xquery.Errors in
  Alcotest.(check string) "static" "static" (class_string (class_of XPST0003));
  Alcotest.(check string) "type" "type" (class_string (class_of XPTY0004));
  Alcotest.(check string) "dynamic" "dynamic" (class_string (class_of FODC0002));
  List.iter
    (fun c ->
      Alcotest.(check string) "resource" "resource" (class_string (class_of c)))
    [ GTLX0001; GTLX0002; GTLX0003; GTLX0004 ];
  Alcotest.(check string) "internal" "internal" (class_string (class_of GTLX0005));
  (* storage errors are environmental, like FODC0002: dynamic class *)
  List.iter
    (fun c ->
      Alcotest.(check string) "storage is dynamic" "dynamic"
        (class_string (class_of c)))
    [ GTLX0006; GTLX0007; GTLX0008 ];
  (* overload shedding terminates a request like a resource limit would *)
  Alcotest.(check string) "overload is resource" "resource"
    (class_string (class_of GTLX0009));
  (* an unreplayable update log is environmental damage, like a corrupt
     snapshot: dynamic class *)
  Alcotest.(check string) "unreplayable log is dynamic" "dynamic"
    (class_string (class_of GTLX0010));
  (* a freshness-bound failure terminates the request like overload
     shedding: the caller chose the bound — resource class *)
  Alcotest.(check string) "stale failover is resource" "resource"
    (class_string (class_of GTLX0012));
  Alcotest.(check string) "storage code string" "gtlx:GTLX0006"
    (code_string GTLX0006);
  Alcotest.(check string) "update-log code string" "gtlx:GTLX0010"
    (code_string GTLX0010);
  Alcotest.(check string) "stale-failover code string" "gtlx:GTLX0012"
    (code_string GTLX0012);
  (* an epoch-fenced write is environmental (the cluster moved on, the
     caller's view is stale), like a storage error: dynamic class *)
  Alcotest.(check string) "epoch fencing is dynamic" "dynamic"
    (class_string (class_of GTLX0013));
  Alcotest.(check string) "epoch-fencing code string" "gtlx:GTLX0013"
    (code_string GTLX0013);
  (* a network I/O deadline expiry terminates the request like any other
     exhausted budget: resource class, retryable *)
  Alcotest.(check string) "io deadline is resource" "resource"
    (class_string (class_of GTLX0014));
  Alcotest.(check string) "io-deadline code string" "gtlx:GTLX0014"
    (code_string GTLX0014)

let tests =
  [
    Alcotest.test_case "error-code table" `Quick test_error_table;
    Alcotest.test_case "step budget (GTLX0001)" `Quick test_step_budget;
    Alcotest.test_case "recursion depth (GTLX0002)" `Quick test_recursion_depth;
    Alcotest.test_case "materialization (GTLX0003)" `Quick
      test_materialization_limit;
    Alcotest.test_case "timeout (GTLX0004)" `Quick test_timeout;
    Alcotest.test_case "fresh governor per run" `Quick
      test_limits_do_not_leak_between_runs;
    Alcotest.test_case "error classes" `Quick test_error_classes;
  ]
