(* The serving robustness contract:

   1. a request is answered with exactly one framed response — a value or
      a structured error — whatever happens inside evaluation (chaos sweep:
      injected eval faults, torn clients, malformed frames);
   2. admission control sheds excess load with GTLX0009 (queue depth +
      retry-after hint) instead of queueing unboundedly, and the client's
      jittered backoff turns a shed into a served retry;
   3. a systematically-failing optimized strategy trips its circuit
      breaker: requests bypass to the reference path, a half-open probe
      re-tests it after a request-counted cooldown;
   4. SIGHUP-style reload swaps snapshots atomically off the request path,
      and a corrupt new snapshot leaves the old engine serving;
   5. shutdown drains: in-flight requests finish, queued stragglers are
      answered with GTLX0009, the socket file is removed;
   6. live updates are single-writer, WAL-first and exact: concurrent
      Update batches serialize, every acknowledged record survives a
      restart (idempotent replay), compaction folds the log into a fresh
      generation on request or past the size threshold — and the
      maintenance ticker does reloads/compactions with zero in-flight
      requests and every worker parked;
   7. the client's retry loop survives a daemon restart (connection
      refused / missing socket retry the same backoff as a shed), with
      the backoff bound pure and property-tested.

   Everything is driven in-process (Server.start + Client) with the
   deterministic injectors from PR 1 (eval faults) and PR 2 (store I/O
   faults); no timing assumption beyond bounded polling of counters. *)

open Galatex_server

(* --- scratch dirs and sockets (inside the dune sandbox cwd; socket
   paths must stay short of the 108-byte sun_path limit, so they are
   relative) --- *)

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_name "srv-scratch" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- fixtures --- *)

let corpus_v1 =
  [
    ( "a.xml",
      "<book><title>Usability testing</title><p>Software usability and \
       testing of web site design.</p></book>" );
  ]

let corpus_v2 =
  [ ("a.xml", "<book><title>Zebra quokka</title><p>entirely new data</p></book>") ]

let save_corpus ~dir sources =
  Ftindex.Store.save ~dir (Ftindex.Indexer.index_strings sources)

let with_server ?(tweak = fun c -> c) ?(sources = corpus_v1) () f =
  with_dir (fun dir ->
      save_corpus ~dir sources;
      let sock = fresh_name "gtx" ^ ".sock" in
      let cfg = tweak (Server.default_config ~index_dir:dir ~socket_path:sock) in
      let t = Server.start cfg in
      Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f dir sock t))

let stat t key =
  match List.assoc_opt key (Server.stats t).Protocol.counters with
  | Some v -> v
  | None -> Alcotest.failf "stats counter %s missing" key

let rec poll ?(tries = 250) msg f =
  if f () then ()
  else if tries = 0 then Alcotest.failf "timeout waiting for %s" msg
  else begin
    Thread.delay 0.02;
    poll ~tries:(tries - 1) msg f
  end

let ok_value what = function
  | Ok (Protocol.Value v) -> v
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "%s: unexpected failure %s: %s" what e.Protocol.code
        e.Protocol.message
  | Ok _ -> Alcotest.failf "%s: unexpected reply kind" what
  | Error reason -> Alcotest.failf "%s: transport error %s" what reason

let ok_failure what = function
  | Ok (Protocol.Failure e) -> e
  | Ok _ -> Alcotest.failf "%s: unexpected success reply" what
  | Error reason -> Alcotest.failf "%s: transport error %s" what reason

let ok_update what = function
  | Ok (Protocol.Update_reply r) -> r
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "%s: unexpected failure %s: %s" what e.Protocol.code
        e.Protocol.message
  | Ok _ -> Alcotest.failf "%s: unexpected reply kind" what
  | Error reason -> Alcotest.failf "%s: transport error %s" what reason

let ok_compact what = function
  | Ok (Protocol.Compact_reply r) -> r
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "%s: unexpected failure %s: %s" what e.Protocol.code
        e.Protocol.message
  | Ok _ -> Alcotest.failf "%s: unexpected reply kind" what
  | Error reason -> Alcotest.failf "%s: transport error %s" what reason

let title_query = {|//title[. ftcontains "usability"]|}

(* --- a gate for parking workers deterministically --- *)

type gate = {
  m : Mutex.t;
  c : Condition.t;
  mutable opened : bool;
  picked : int Atomic.t;  (* workers that reached the gate *)
}

let gate () =
  { m = Mutex.create (); c = Condition.create (); opened = false;
    picked = Atomic.make 0 }

let gate_hook g () =
  Atomic.incr g.picked;
  Mutex.lock g.m;
  while not g.opened do
    Condition.wait g.c g.m
  done;
  Mutex.unlock g.m

let open_gate g =
  Mutex.lock g.m;
  g.opened <- true;
  Condition.broadcast g.c;
  Mutex.unlock g.m

(* ------------------------------------------------------------------ *)
(* Protocol round trips (pure codec, no server).                       *)

let test_protocol_roundtrip () =
  let q =
    Protocol.query_request ~strategy:Galatex.Engine.Native_pipelined
      ~optimize:true ~fallback:false ~context:"a.xml"
      ~limits:
        { Xquery.Limits.max_steps = Some 100; max_depth = None;
          max_matches = Some 7; timeout = Some 1.5 }
      ~fault_at:3 "//p"
  in
  (match Protocol.decode_request (Protocol.encode_request (Protocol.Query q)) with
  | Ok (Protocol.Query q') ->
      Alcotest.(check bool) "query round trip" true (q = q')
  | Ok _ -> Alcotest.fail "decoded as another request"
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (match Protocol.decode_request (Protocol.encode_request Protocol.Stats) with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats round trip");
  let ops =
    [
      Ftindex.Wal.Add_doc { uri = "b.xml"; source = "<doc>new text</doc>" };
      Ftindex.Wal.Remove_doc "a.xml";
    ]
  in
  (match
     Protocol.decode_request
       (Protocol.encode_request (Protocol.Update { ops; epoch = 7 }))
   with
  | Ok (Protocol.Update { ops = ops'; epoch }) ->
      Alcotest.(check bool) "update round trip" true (ops = ops');
      Alcotest.(check int) "update epoch round trip" 7 epoch
  | _ -> Alcotest.fail "update round trip");
  (match
     Protocol.decode_request
       (Protocol.encode_request (Protocol.Compact { epoch = 9 }))
   with
  | Ok (Protocol.Compact { epoch = 9 }) -> ()
  | _ -> Alcotest.fail "compact round trip");
  (match
     Protocol.decode_request
       (Protocol.encode_request (Protocol.Promote { p_epoch = 4 }))
   with
  | Ok (Protocol.Promote { p_epoch = 4 }) -> ()
  | _ -> Alcotest.fail "promote round trip");
  (match
     Protocol.decode_request
       (Protocol.encode_request
          (Protocol.Demote { d_epoch = 6; d_primary = "pri.sock" }))
   with
  | Ok (Protocol.Demote { d_epoch = 6; d_primary = "pri.sock" }) -> ()
  | _ -> Alcotest.fail "demote round trip");
  let update_resp =
    Protocol.Update_reply
      { Protocol.u_generation = 3; u_last_seq = 17; u_records = 5;
        u_bytes = 512; u_epoch = 2 }
  in
  (match Protocol.decode_response (Protocol.encode_response update_resp) with
  | Ok r -> Alcotest.(check bool) "update reply round trip" true (r = update_resp)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let compact_resp =
    Protocol.Compact_reply { Protocol.c_generation = 4; c_folded = 5 }
  in
  (match Protocol.decode_response (Protocol.encode_response compact_resp) with
  | Ok r ->
      Alcotest.(check bool) "compact reply round trip" true (r = compact_resp)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let resp =
    Protocol.Failure
      { Protocol.code = "gtlx:GTLX0009"; error_class = "resource";
        message = "shed"; retry_after_ms = Some 25; queue_depth = Some 3 }
  in
  (match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok r -> Alcotest.(check bool) "response round trip" true (r = resp)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* cluster-era fields: deadline propagation, merge policy, health /
     reload requests, partial-result framing *)
  let qc =
    Protocol.query_request ~deadline_left:0.75 ~merge:(Protocol.Merge_topk 10)
      "//p"
  in
  (match
     Protocol.decode_request (Protocol.encode_request (Protocol.Query qc))
   with
  | Ok (Protocol.Query q') ->
      Alcotest.(check bool) "deadline+merge round trip" true (qc = q')
  | _ -> Alcotest.fail "deadline+merge round trip");
  (match Protocol.decode_request (Protocol.encode_request Protocol.Health) with
  | Ok Protocol.Health -> ()
  | _ -> Alcotest.fail "health round trip");
  (match Protocol.decode_request (Protocol.encode_request Protocol.Reload) with
  | Ok Protocol.Reload -> ()
  | _ -> Alcotest.fail "reload round trip");
  let partial_resp =
    Protocol.Value
      {
        Protocol.items = [ "<title>t</title>" ];
        strategy_used = "materialized";
        fell_back = false;
        steps = 12;
        generation = 2;
        seq = 5;
        partial =
          Some { Protocol.missing = [ 1; 3 ]; detail = "partition 1: down" };
      }
  in
  (match Protocol.decode_response (Protocol.encode_response partial_resp) with
  | Ok r ->
      Alcotest.(check bool) "partial reply round trip" true (r = partial_resp)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let health_resp =
    Protocol.Health_reply
      {
        Protocol.h_generation = 7;
        h_wal_records = 3;
        h_draining = true;
        h_seq = 3;
        h_manifest_crc = 0xdeadbeef;
        h_epoch = 5;
        h_role = "primary";
        h_endpoints =
          [
            {
              Protocol.e_path = "/tmp/s0.sock";
              e_shard = 0;
              e_role = "replica";
              e_state = "half-open";
              e_up = true;
              e_generation = 7;
              e_seq = 1;
              e_epoch = 3;
              e_lag = Some 2;
            };
            {
              Protocol.e_path = "/tmp/s1.sock";
              e_shard = 1;
              e_role = "primary";
              e_state = "closed";
              e_up = false;
              e_generation = 0;
              e_seq = 0;
              e_epoch = 0;
              e_lag = None;
            };
          ];
      }
  in
  (match Protocol.decode_response (Protocol.encode_response health_resp) with
  | Ok r ->
      Alcotest.(check bool) "health reply round trip" true (r = health_resp)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* replication round trips: catch-up pull and snapshot transfer *)
  (match
     Protocol.decode_request
       (Protocol.encode_request (Protocol.Fetch_wal { from_seq = 42; epoch = 3 }))
   with
  | Ok (Protocol.Fetch_wal { from_seq = 42; epoch = 3 }) -> ()
  | _ -> Alcotest.fail "fetch-wal round trip");
  List.iter
    (fun file ->
      match
        Protocol.decode_request
          (Protocol.encode_request (Protocol.Fetch_snapshot { file }))
      with
      | Ok (Protocol.Fetch_snapshot { file = f }) when f = file -> ()
      | _ -> Alcotest.fail "fetch-snapshot round trip")
    [ None; Some "MANIFEST" ];
  let wal_resp =
    Protocol.Wal_reply
      {
        Protocol.w_generation = 3;
        w_last_seq = 99;
        w_epoch = 4;
        w_frames = "\x01binary\x00";
      }
  in
  (match Protocol.decode_response (Protocol.encode_response wal_resp) with
  | Ok r -> Alcotest.(check bool) "wal reply round trip" true (r = wal_resp)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let snap_resp =
    Protocol.Snapshot_reply
      {
        Protocol.sn_generation = 5;
        sn_manifest_crc = 123456789;
        sn_files = [ "MANIFEST"; "docs.0000000005.seg" ];
        sn_data = Some "\x00raw\xffbytes";
      }
  in
  (match Protocol.decode_response (Protocol.encode_response snap_resp) with
  | Ok r ->
      Alcotest.(check bool) "snapshot reply round trip" true (r = snap_resp)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* a total decoder: garbage comes back as Error, never an exception *)
  List.iter
    (fun garbage ->
      match Protocol.decode_request garbage with
      | Ok _ | Error _ -> ())
    [ ""; "Z"; "Q"; "Qxx"; "H"; "Hx"; "Rx"; String.make 64 '\xff' ]

let test_breaker_state_machine () =
  let b = Breaker.create ~threshold:3 ~cooldown:2 in
  let key = "pipelined" in
  for _ = 1 to 2 do
    Alcotest.(check bool) "closed runs" true (Breaker.route b key = Breaker.Run);
    Breaker.record b key ~ok:false
  done;
  (* an intervening success resets the consecutive count *)
  Alcotest.(check bool) "still closed" true (Breaker.route b key = Breaker.Run);
  Breaker.record b key ~ok:true;
  for _ = 1 to 3 do
    ignore (Breaker.route b key);
    Breaker.record b key ~ok:false
  done;
  Alcotest.(check int) "tripped once" 1 (Breaker.trips_total b);
  Alcotest.(check bool) "open bypasses" true (Breaker.route b key = Breaker.Bypass);
  Alcotest.(check bool) "open bypasses again" true
    (Breaker.route b key = Breaker.Bypass);
  Alcotest.(check bool) "half-open probes" true
    (Breaker.route b key = Breaker.Probe);
  Alcotest.(check bool) "only one probe" true
    (Breaker.route b key = Breaker.Bypass);
  Breaker.record b key ~ok:false;
  Alcotest.(check int) "probe failure re-trips" 2 (Breaker.trips_total b);
  ignore (Breaker.route b key);
  ignore (Breaker.route b key);
  Alcotest.(check bool) "probes again" true (Breaker.route b key = Breaker.Probe);
  Breaker.record b key ~ok:true;
  Alcotest.(check bool) "closed after good probe" true
    (Breaker.route b key = Breaker.Run)

(* The half-open window under contention: when the cooldown expires, many
   workers may route the same strategy in the same instant — exactly one
   of them must be admitted as the probe, every other one must bypass,
   or a still-broken strategy gets hammered by a thundering herd of
   "probes".  Raced with a barrier so all threads hit route together. *)
let test_breaker_half_open_single_probe () =
  let threads = 8 in
  for round = 1 to 20 do
    let b = Breaker.create ~threshold:1 ~cooldown:1 in
    let key = "pipelined" in
    ignore (Breaker.route b key);
    Breaker.record b key ~ok:false;
    (* Open 1: one bypassed request brings it to half-open *)
    Alcotest.(check bool) "cooldown bypass" true
      (Breaker.route b key = Breaker.Bypass);
    let barrier = Mutex.create () and turnstile = Condition.create () in
    let released = ref false and arrived = ref 0 in
    let probes = Atomic.make 0 and bypasses = Atomic.make 0 in
    let racer () =
      Mutex.lock barrier;
      incr arrived;
      if !arrived = threads then begin
        released := true;
        Condition.broadcast turnstile
      end
      else
        while not !released do
          Condition.wait turnstile barrier
        done;
      Mutex.unlock barrier;
      match Breaker.route b key with
      | Breaker.Probe -> Atomic.incr probes
      | Breaker.Bypass -> Atomic.incr bypasses
      | Breaker.Run -> ()
    in
    let ts = List.init threads (fun _ -> Thread.create racer ()) in
    List.iter Thread.join ts;
    if Atomic.get probes <> 1 then
      Alcotest.failf "round %d: %d probes admitted (want exactly 1)" round
        (Atomic.get probes);
    Alcotest.(check int)
      (Printf.sprintf "round %d: the rest bypass" round)
      (threads - 1) (Atomic.get bypasses);
    (* the probe's outcome still drives the machine: a success closes it *)
    Breaker.record b key ~ok:true;
    Alcotest.(check bool) "closed after raced probe" true
      (Breaker.route b key = Breaker.Run)
  done

(* ------------------------------------------------------------------ *)
(* Basic serving.                                                      *)

let test_basic_round_trip () =
  with_server () (fun _dir sock t ->
      let v =
        ok_value "query"
          (Client.request ~socket_path:sock
             (Protocol.Query (Protocol.query_request title_query)))
      in
      Alcotest.(check (list string))
        "items" [ "<title>Usability testing</title>" ] v.Protocol.items;
      Alcotest.(check int) "generation" 1 v.Protocol.generation;
      Alcotest.(check bool) "no fallback" false v.Protocol.fell_back;
      (* structured evaluation error over the wire, daemon stays up *)
      let e =
        ok_failure "bad query"
          (Client.request ~socket_path:sock
             (Protocol.Query (Protocol.query_request "//p[")))
      in
      Alcotest.(check string) "syntax code" "err:XPST0003" e.Protocol.code;
      Alcotest.(check string) "static class" "static" e.Protocol.error_class;
      Alcotest.(check int) "exit code" 1
        (Protocol.exit_code_of_class e.Protocol.error_class);
      Alcotest.(check int) "served" 1 (stat t "served");
      Alcotest.(check int) "errors" 1 (stat t "errors"))

let test_stats_over_wire () =
  with_server () (fun _dir sock _t ->
      ignore
        (ok_value "query"
           (Client.request ~socket_path:sock
              (Protocol.Query (Protocol.query_request title_query))));
      match Client.stats ~socket_path:sock () with
      | Error e -> Alcotest.failf "stats transport: %s" e
      | Ok s ->
          Alcotest.(check int)
            "served over wire" 1
            (Option.value (List.assoc_opt "served" s.Protocol.counters) ~default:(-1));
          Alcotest.(check bool)
            "generation present" true
            (List.mem_assoc "generation" s.Protocol.counters))

let test_malformed_and_torn_clients () =
  with_server () (fun _dir sock t ->
      (* a well-framed but meaningless payload: structured static error *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Protocol.write_frame fd "ZZZZ-not-a-request";
      (match Protocol.read_frame fd with
      | Ok data -> (
          match Protocol.decode_response data with
          | Ok (Protocol.Failure e) ->
              Alcotest.(check string) "malformed code" "err:XPST0003"
                e.Protocol.code
          | _ -> Alcotest.fail "expected a structured failure")
      | Error e -> Alcotest.failf "no response to malformed request: %s" e);
      Unix.close fd;
      (* a torn client: frame header promises 100 bytes, sends 10, dies *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let b = Buffer.create 14 in
      Buffer.add_string b "\x64\x00\x00\x00";
      Buffer.add_string b "ten bytes!";
      ignore (Unix.write_substring fd (Buffer.contents b) 0 14);
      Unix.close fd;
      poll "torn client counted" (fun () -> stat t "client_errors" >= 2);
      (* an instantly-vanishing client *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Unix.close fd;
      poll "eof client counted" (fun () -> stat t "client_errors" >= 3);
      (* the daemon shrugged it all off *)
      ignore
        (ok_value "control query"
           (Client.request ~socket_path:sock
              (Protocol.Query (Protocol.query_request title_query)))))

(* ------------------------------------------------------------------ *)
(* Admission control + client backoff.                                 *)

let test_admission_control () =
  let g = gate () in
  with_server
    ~tweak:(fun c ->
      { c with workers = 1; queue_limit = 1; on_request = gate_hook g })
    ()
    (fun _dir sock t ->
      let req () =
        Client.request ~socket_path:sock
          (Protocol.Query (Protocol.query_request title_query))
      in
      let r1 = ref (Error "pending") and r2 = ref (Error "pending") in
      let t1 = Thread.create (fun () -> r1 := req ()) () in
      (* the lone worker parks on request 1 *)
      poll "worker parked" (fun () -> Atomic.get g.picked = 1);
      let t2 = Thread.create (fun () -> r2 := req ()) () in
      poll "queue filled" (fun () -> stat t "queue_depth" = 1);
      (* queue full: request 3 is shed synchronously, without queueing *)
      let e = ok_failure "shed" (req ()) in
      Alcotest.(check string) "shed code" "gtlx:GTLX0009" e.Protocol.code;
      Alcotest.(check string) "resource class" "resource" e.Protocol.error_class;
      Alcotest.(check (option int)) "queue depth carried" (Some 1)
        e.Protocol.queue_depth;
      Alcotest.(check bool) "retry hint carried" true
        (e.Protocol.retry_after_ms <> None);
      Alcotest.(check int) "shed counted" 1 (stat t "shed");
      open_gate g;
      Thread.join t1;
      Thread.join t2;
      ignore (ok_value "request 1 served" !r1);
      ignore (ok_value "request 2 served" !r2);
      Alcotest.(check int) "served" 2 (stat t "served"))

let test_client_backoff_retries () =
  let g = gate () in
  with_server
    ~tweak:(fun c ->
      { c with workers = 1; queue_limit = 1; retry_after_ms = 40;
        on_request = gate_hook g })
    ()
    (fun _dir sock t ->
      let q = Protocol.query_request title_query in
      let park = Thread.create (fun () ->
          ignore (Client.request ~socket_path:sock (Protocol.Query q))) ()
      in
      poll "worker parked" (fun () -> Atomic.get g.picked = 1);
      let fill = Thread.create (fun () ->
          ignore (Client.request ~socket_path:sock (Protocol.Query q))) ()
      in
      poll "queue filled" (fun () -> stat t "queue_depth" = 1);
      (* without retries the overload is the answer *)
      let e = ok_failure "shed" (Client.query ~socket_path:sock q) in
      Alcotest.(check string) "shed code" "gtlx:GTLX0009" e.Protocol.code;
      (* with retries: the first backoff sleep releases the jam, the retry
         is served.  jitter is pinned to the deterministic upper bound, so
         the recorded delays are exactly base * 2^(k-1), base = the
         server's own retry-after hint (40ms) *)
      let slept = ref [] in
      let sleep d =
        slept := d :: !slept;
        open_gate g
      in
      let v =
        ok_value "served after retry"
          (Client.query ~socket_path:sock ~retries:3 ~jitter:Fun.id ~sleep q)
      in
      Alcotest.(check (list string))
        "retried answer" [ "<title>Usability testing</title>" ] v.Protocol.items;
      (match List.rev !slept with
      | first :: _ ->
          Alcotest.(check (float 1e-9)) "hint-seeded backoff" 0.040 first
      | [] -> Alcotest.fail "no backoff sleep recorded");
      Thread.join park;
      Thread.join fill;
      Alcotest.(check bool) "shed counted" true (stat t "shed" >= 1))

(* ------------------------------------------------------------------ *)
(* Circuit breaker over the wire.                                      *)

let test_breaker_lifecycle () =
  with_server
    ~tweak:(fun c -> { c with breaker_threshold = 3; breaker_cooldown = 2 })
    ()
    (fun _dir sock t ->
      let send ?fault_at () =
        ok_value "pipelined request"
          (Client.request ~socket_path:sock
             (Protocol.Query
                (Protocol.query_request
                   ~strategy:Galatex.Engine.Native_pipelined ?fault_at
                   title_query)))
      in
      let state () =
        match
          List.find_opt
            (fun b -> b.Protocol.b_strategy = "pipelined")
            (Server.stats t).Protocol.breakers
        with
        | Some b -> b.Protocol.b_state
        | None -> "absent"
      in
      (* three consecutive internal-error fallbacks trip the breaker *)
      for i = 1 to 3 do
        let v = send ~fault_at:1 () in
        Alcotest.(check bool)
          (Printf.sprintf "request %d fell back" i)
          true v.Protocol.fell_back
      done;
      Alcotest.(check string) "tripped" "open" (state ());
      Alcotest.(check int) "one trip" 1 (stat t "breaker_trips");
      (* while open, requests bypass to the reference path — the injected
         fault never runs, so the answer is clean *)
      for i = 1 to 2 do
        let v = send ~fault_at:1 () in
        Alcotest.(check bool)
          (Printf.sprintf "bypass %d is clean" i)
          false v.Protocol.fell_back;
        Alcotest.(check string)
          (Printf.sprintf "bypass %d on reference path" i)
          "materialized" v.Protocol.strategy_used
      done;
      Alcotest.(check int) "bypasses counted" 2 (stat t "breaker_bypassed");
      Alcotest.(check string) "cooldown elapsed" "half-open" (state ());
      (* the half-open probe runs the real strategy; it still faults *)
      let v = send ~fault_at:1 () in
      Alcotest.(check bool) "probe fell back" true v.Protocol.fell_back;
      Alcotest.(check string) "probe failure re-opens" "open" (state ());
      Alcotest.(check int) "second trip" 2 (stat t "breaker_trips");
      (* cooldown again, then a healthy probe closes it *)
      ignore (send ~fault_at:1 ());
      ignore (send ~fault_at:1 ());
      let v = send () in
      Alcotest.(check bool) "good probe" false v.Protocol.fell_back;
      Alcotest.(check string) "probe ran the strategy" "pipelined"
        v.Protocol.strategy_used;
      Alcotest.(check string) "closed again" "closed" (state ());
      let v = send () in
      Alcotest.(check string) "serving on pipelined again" "pipelined"
        v.Protocol.strategy_used)

(* ------------------------------------------------------------------ *)
(* Hot snapshot reload.                                                *)

let test_hot_reload () =
  with_server () (fun dir sock t ->
      let ask query =
        Client.request ~socket_path:sock
          (Protocol.Query (Protocol.query_request query))
      in
      let v = ok_value "gen 1 query" (ask title_query) in
      Alcotest.(check int) "serving gen 1" 1 v.Protocol.generation;
      (* a new snapshot generation lands in the directory *)
      save_corpus ~dir corpus_v2;
      Alcotest.(check (option int))
        "directory moved on" (Some 2)
        (Ftindex.Store.current_generation ~dir);
      Alcotest.(check int) "still serving gen 1" 1 (Server.generation t);
      Server.request_reload t;
      poll "reload applied" (fun () -> Server.generation t = 2);
      let v = ok_value "gen 2 query" (ask {|//title[. ftcontains "zebra"]|}) in
      Alcotest.(check (list string))
        "new data served" [ "<title>Zebra quokka</title>" ] v.Protocol.items;
      Alcotest.(check int) "reply stamped gen 2" 2 v.Protocol.generation;
      Alcotest.(check int) "one reload" 1 (stat t "reloads"))

let test_reload_watcher () =
  with_server ~tweak:(fun c -> { c with watch_generation = true }) ()
    (fun dir _sock t ->
      save_corpus ~dir corpus_v2;
      (* no explicit request: the watcher notices the generation change *)
      poll "watcher reloaded" (fun () -> Server.generation t = 2))

let test_reload_failure_keeps_old_engine () =
  with_server () (fun dir _sock t ->
      save_corpus ~dir corpus_v2;
      (* every reload attempt dies on an injected I/O fault: the old
         engine must keep serving *)
      Server.set_reload_io t (fun () ->
          Ftindex.Store.Io.with_fault ~at:1 Ftindex.Store.Io.Io_error);
      Server.request_reload t;
      poll "reload failure counted" (fun () -> stat t "reload_failures" = 1);
      Alcotest.(check int) "old engine retained" 1 (Server.generation t);
      (* injected crash faults are absorbed the same way *)
      Server.set_reload_io t (fun () ->
          Ftindex.Store.Io.with_fault ~at:2 Ftindex.Store.Io.Crash);
      Server.request_reload t;
      poll "crash fault counted" (fun () -> stat t "reload_failures" = 2);
      Alcotest.(check int) "old engine still retained" 1 (Server.generation t);
      (* heal the I/O layer: the next reload succeeds *)
      Server.set_reload_io t (fun () -> Ftindex.Store.Io.real ());
      Server.request_reload t;
      poll "healed reload applied" (fun () -> Server.generation t = 2))

(* ------------------------------------------------------------------ *)
(* Observability: counters across reloads, metrics, slow-query log.    *)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* The regression this PR fixes: the atomic engine swap on reload used
   to replace the engine-lifetime counter cells, silently zeroing
   [queries]/[fallbacks_total] and the latency histograms. *)
let test_counters_survive_reload () =
  with_server () (fun dir sock t ->
      let ask ?fault_at () =
        Client.request ~socket_path:sock
          (Protocol.Query
             (Protocol.query_request ~strategy:Galatex.Engine.Native_pipelined
                ?fault_at title_query))
      in
      ignore (ok_value "plain query" (ask ()));
      ignore (ok_value "fallback query" (ask ~fault_at:1 ()));
      Alcotest.(check int) "queries before reload" 2 (stat t "queries");
      Alcotest.(check int) "fallbacks before reload" 1 (stat t "fallbacks_total");
      let histogram_count () =
        match Client.metrics ~socket_path:sock () with
        | Ok text -> text
        | Error reason -> Alcotest.failf "metrics: %s" reason
      in
      Alcotest.(check bool) "histogram populated before reload" true
        (contains
           {|galatex_query_duration_seconds_count{strategy="pipelined"} 2|}
           (histogram_count ()));
      save_corpus ~dir corpus_v2;
      Server.request_reload t;
      poll "reload applied" (fun () -> Server.generation t = 2);
      Alcotest.(check int) "queries carried across the swap" 2 (stat t "queries");
      Alcotest.(check int) "fallbacks carried across the swap" 1
        (stat t "fallbacks_total");
      Alcotest.(check bool) "histogram carried across the swap" true
        (contains
           {|galatex_query_duration_seconds_count{strategy="pipelined"} 2|}
           (histogram_count ()));
      (* and the carried cells keep counting, they are not frozen copies *)
      ignore (ok_value "fallback after reload" (ask ~fault_at:1 ()));
      Alcotest.(check int) "queries keep counting" 3 (stat t "queries");
      Alcotest.(check int) "fallbacks keep counting" 2 (stat t "fallbacks_total");
      Alcotest.(check bool) "histogram keeps counting" true
        (contains
           {|galatex_query_duration_seconds_count{strategy="pipelined"} 3|}
           (histogram_count ())))

(* Metrics exposition and the slow-query log, under the injected manual
   clock: each query reads the clock three times (start, end, log stamp),
   so with step 1 every query lasts exactly one tick = 1000 ms. *)
let test_metrics_and_slowlog () =
  with_server
    ~tweak:(fun c ->
      {
        c with
        clock = Obs.Clock.manual ();
        slowlog_threshold = 0.0;
        slowlog_capacity = 4;
      })
    ()
    (fun _dir sock _t ->
      ignore
        (ok_value "one query"
           (Client.request ~socket_path:sock
              (Protocol.Query (Protocol.query_request title_query))));
      let text =
        match Client.metrics ~socket_path:sock () with
        | Ok text -> text
        | Error reason -> Alcotest.failf "metrics: %s" reason
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("exposition has " ^ needle) true
            (contains needle text))
        [
          "galatex_queries_total 1";
          "# TYPE galatex_queries_total counter";
          "galatex_engine_allmatches_materialized_total";
          "galatex_engine_postings_read_total";
          {|galatex_query_duration_seconds_count{strategy="materialized"} 1|};
          {|galatex_query_duration_seconds_bucket{strategy="materialized",le="+Inf"} 1|};
          {|galatex_query_duration_seconds_count{strategy="pipelined"} 0|};
        ];
      match Client.slowlog ~socket_path:sock () with
      | Error reason -> Alcotest.failf "slowlog: %s" reason
      | Ok entries -> (
          match entries with
          | [ e ] ->
              Alcotest.(check string) "slow entry query" title_query
                e.Protocol.s_query;
              Alcotest.(check string) "slow entry strategy" "materialized"
                e.Protocol.s_strategy;
              Alcotest.(check (float 0.)) "deterministic duration" 1000.0
                e.Protocol.s_duration_ms;
              Alcotest.(check bool) "steps recorded" true (e.Protocol.s_steps > 0)
          | entries ->
              Alcotest.failf "expected one slow entry, got %d"
                (List.length entries)))

(* ------------------------------------------------------------------ *)
(* Graceful shutdown.                                                  *)

let test_graceful_shutdown () =
  let g = gate () in
  with_server
    ~tweak:(fun c ->
      { c with workers = 2; queue_limit = 8; on_request = gate_hook g })
    ()
    (fun _dir sock t ->
      let results = Array.make 5 (Error "pending") in
      let spawn i =
        Thread.create
          (fun () ->
            results.(i) <-
              Client.request ~socket_path:sock
                (Protocol.Query (Protocol.query_request title_query)))
          ()
      in
      let t0 = spawn 0 and t1 = spawn 1 in
      poll "both workers parked" (fun () -> Atomic.get g.picked = 2);
      let rest = List.map spawn [ 2; 3; 4 ] in
      poll "three queued" (fun () -> stat t "queue_depth" = 3);
      Server.request_shutdown t;
      (* the drain answers queued stragglers without needing the (still
         parked) workers *)
      poll "stragglers answered" (fun () -> stat t "shed_shutdown" = 3);
      open_gate g;
      Server.wait t;
      List.iter Thread.join (t0 :: t1 :: rest);
      ignore (ok_value "in-flight 0 finished" results.(0));
      ignore (ok_value "in-flight 1 finished" results.(1));
      List.iter
        (fun i ->
          let e = ok_failure (Printf.sprintf "straggler %d" i) results.(i) in
          Alcotest.(check string)
            (Printf.sprintf "straggler %d shed" i)
            "gtlx:GTLX0009" e.Protocol.code)
        [ 2; 3; 4 ];
      Alcotest.(check bool) "socket removed" false (Sys.file_exists sock);
      (match
         Client.request ~socket_path:sock
           (Protocol.Query (Protocol.query_request title_query))
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "socket still answering after shutdown"))

(* ------------------------------------------------------------------ *)
(* Chaos: everything at once, and the invariant is simply that every
   well-formed request gets one structured response and the daemon
   survives.                                                           *)

let test_chaos () =
  with_server ~tweak:(fun c -> { c with workers = 4; queue_limit = 16 }) ()
    (fun _dir sock t ->
      let strategies =
        [
          Galatex.Engine.Translated;
          Galatex.Engine.Native_materialized;
          Galatex.Engine.Native_pipelined;
        ]
      in
      let structured = Atomic.make 0 in
      let failures = ref [] in
      let failures_lock = Mutex.create () in
      let fail_with msg =
        Mutex.lock failures_lock;
        failures := msg :: !failures;
        Mutex.unlock failures_lock
      in
      (* a storm of clients: injected eval faults at assorted steps across
         every strategy/optimization/fallback combination, interleaved
         with torn connections and malformed frames *)
      let well_formed =
        List.concat_map
          (fun strategy ->
            List.concat_map
              (fun optimize ->
                List.concat_map
                  (fun fallback ->
                    List.map
                      (fun fault_at -> (strategy, optimize, fallback, fault_at))
                      [ None; Some 1; Some 5; Some 50 ])
                  [ true; false ])
              [ true; false ])
          strategies
      in
      let client (strategy, optimize, fallback, fault_at) =
        let q =
          Protocol.query_request ~strategy ~optimize ~fallback ?fault_at
            title_query
        in
        match Client.request ~socket_path:sock (Protocol.Query q) with
        | Ok (Protocol.Value _) | Ok (Protocol.Failure _) ->
            Atomic.incr structured
        | Ok _ -> fail_with "non-query reply to a query"
        | Error reason -> fail_with ("transport error: " ^ reason)
      in
      let torn_client () =
        match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
            (try
               Unix.connect fd (Unix.ADDR_UNIX sock);
               ignore (Unix.write_substring fd "\x40\x00\x00\x00abc" 0 7)
             with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ())
      in
      let malformed_client () =
        match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
            (try
               Unix.connect fd (Unix.ADDR_UNIX sock);
               Protocol.write_frame fd (String.make 32 '\xfe');
               ignore (Protocol.read_frame fd)
             with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ())
      in
      let threads =
        List.mapi
          (fun i spec ->
            Thread.create
              (fun () ->
                client spec;
                if i mod 3 = 0 then torn_client ();
                if i mod 5 = 0 then malformed_client ())
              ())
          well_formed
      in
      List.iter Thread.join threads;
      (match !failures with
      | [] -> ()
      | msgs ->
          Alcotest.failf "%d chaos clients broke the contract, e.g. %s"
            (List.length msgs) (List.hd msgs));
      Alcotest.(check int)
        "every well-formed request answered structurally"
        (List.length well_formed) (Atomic.get structured);
      (* the accept loop and every worker survived the storm *)
      ignore
        (ok_value "post-chaos control query"
           (Client.request ~socket_path:sock
              (Protocol.Query (Protocol.query_request title_query))));
      Alcotest.(check bool)
        "torn clients were counted, not fatal" true
        (stat t "client_errors" > 0))

(* ------------------------------------------------------------------ *)
(* Satellite (a): engine-level mutable state under concurrency.  One
   engine, many threads forcing the fallback path — the atomic counter
   must come out exact (a plain int loses increments).                 *)

let test_engine_fallback_counter_threadsafe () =
  let engine = Galatex.Engine.of_strings corpus_v1 in
  let threads_n = 8 and per_thread = 25 in
  let errors = Atomic.make 0 in
  let threads =
    List.init threads_n (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do
              match
                Galatex.Engine.run_report engine
                  ~strategy:Galatex.Engine.Native_pipelined ~fault_at:1
                  title_query
              with
              | r -> if not r.Galatex.Engine.fell_back then Atomic.incr errors
              | exception _ -> Atomic.incr errors
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "every run fell back" 0 (Atomic.get errors);
  Alcotest.(check int)
    "no lost increments" (threads_n * per_thread)
    (Galatex.Engine.fallback_count engine)

(* ------------------------------------------------------------------ *)
(* Live updates over the wire (the tentpole, served).                   *)

let zebra_doc =
  "<book><title>Zebra quokka</title><p>entirely new data about zebra \
   usability</p></book>"

let ask sock query =
  Client.request ~socket_path:sock (Protocol.Query (Protocol.query_request query))

let send_update sock ops =
  Client.request ~socket_path:sock (Protocol.Update { ops; epoch = 0 })

let test_update_over_wire () =
  with_server () (fun _dir sock t ->
      let r =
        ok_update "add b.xml"
          (send_update sock
             [ Ftindex.Wal.Add_doc { uri = "b.xml"; source = zebra_doc } ])
      in
      Alcotest.(check int) "base generation" 1 r.Protocol.u_generation;
      Alcotest.(check int) "one record" 1 r.Protocol.u_records;
      Alcotest.(check int) "first seq" 1 r.Protocol.u_last_seq;
      (* the update is visible to the very next query *)
      let v = ok_value "zebra" (ask sock {|collection()//title[. ftcontains "zebra"]|}) in
      Alcotest.(check (list string))
        "added document served" [ "<title>Zebra quokka</title>" ]
        v.Protocol.items;
      (* removal, same path *)
      let r =
        ok_update "remove a.xml" (send_update sock [ Ftindex.Wal.Remove_doc "a.xml" ])
      in
      Alcotest.(check int) "second seq" 2 r.Protocol.u_last_seq;
      let v = ok_value "usability gone" (ask sock title_query) in
      Alcotest.(check (list string)) "removed document gone" [] v.Protocol.items;
      Alcotest.(check int) "updates counted" 2 (stat t "updates");
      Alcotest.(check int) "wal records mirrored" 2 (stat t "wal_records");
      (* a malformed add is rejected before anything reaches the log *)
      let e =
        ok_failure "malformed add"
          (send_update sock
             [ Ftindex.Wal.Add_doc { uri = "bad.xml"; source = "<broken" } ])
      in
      Alcotest.(check string) "syntax code" "err:XPST0003" e.Protocol.code;
      Alcotest.(check int) "log untouched" 2 (stat t "wal_records"))

let test_update_survives_restart () =
  with_dir (fun dir ->
      save_corpus ~dir corpus_v1;
      let sock = fresh_name "gtx" ^ ".sock" in
      let cfg = Server.default_config ~index_dir:dir ~socket_path:sock in
      let t = Server.start cfg in
      ignore
        (ok_update "add"
           (send_update sock
              [ Ftindex.Wal.Add_doc { uri = "b.xml"; source = zebra_doc } ]));
      let before =
        (ok_value "before restart" (ask sock {|collection()//title[. ftcontains "zebra"]|}))
          .Protocol.items
      in
      Alcotest.(check (list string))
        "update served before restart" [ "<title>Zebra quokka</title>" ] before;
      Server.stop t;
      (* cold start: the snapshot is still generation 1; the acknowledged
         update must come back from the write-ahead log *)
      let t = Server.start cfg in
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () ->
          let after =
            (ok_value "after restart" (ask sock {|collection()//title[. ftcontains "zebra"]|}))
              .Protocol.items
          in
          Alcotest.(check (list string)) "identical answers" before after;
          Alcotest.(check int) "log recovered" 1 (stat t "wal_records")))

let test_concurrent_updates_single_writer () =
  with_server () (fun _dir sock t ->
      let n = 8 in
      let failures = Atomic.make 0 in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                let doc =
                  Printf.sprintf
                    "<book><title>Quokka %d</title><p>quokka facts</p></book>" i
                in
                let uri = Printf.sprintf "d%d.xml" i in
                match
                  send_update sock [ Ftindex.Wal.Add_doc { uri; source = doc } ]
                with
                | Ok (Protocol.Update_reply _) -> ()
                | _ -> Atomic.incr failures)
              ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "every batch acknowledged" 0 (Atomic.get failures);
      Alcotest.(check int) "all updates applied" n (stat t "updates");
      Alcotest.(check int) "all records logged" n (stat t "wal_records");
      (* exactness after the race: every one of the n documents answers *)
      let v = ok_value "quokka" (ask sock {|collection()//title[. ftcontains "quokka"]|}) in
      Alcotest.(check int) "all documents served" n (List.length v.Protocol.items);
      (* explicit compaction folds them into generation 2 *)
      let c =
        ok_compact "compact" (Client.request ~socket_path:sock (Protocol.Compact { epoch = 0 }))
      in
      Alcotest.(check int) "records folded" n c.Protocol.c_folded;
      Alcotest.(check int) "fresh generation" 2 c.Protocol.c_generation;
      Alcotest.(check int) "log reset" 0 (stat t "wal_records");
      let v = ok_value "post-compact" (ask sock {|collection()//title[. ftcontains "quokka"]|}) in
      Alcotest.(check int) "still all served" n (List.length v.Protocol.items);
      Alcotest.(check int) "reply stamped gen 2" 2 v.Protocol.generation)

let test_threshold_background_compaction () =
  with_server ~tweak:(fun c -> { c with wal_compact_bytes = Some 1 }) ()
    (fun _dir sock t ->
      ignore
        (ok_update "add"
           (send_update sock
              [ Ftindex.Wal.Add_doc { uri = "b.xml"; source = zebra_doc } ]));
      (* the ticker notices the over-threshold log off the request path *)
      poll "background compaction ran" (fun () -> stat t "compactions" >= 1);
      poll "log reset" (fun () -> stat t "wal_records" = 0);
      poll "generation moved" (fun () -> Server.generation t = 2);
      let v = ok_value "post-compact" (ask sock {|collection()//title[. ftcontains "zebra"]|}) in
      Alcotest.(check (list string))
        "update survived compaction" [ "<title>Zebra quokka</title>" ]
        v.Protocol.items)

let test_update_fault_is_structured () =
  with_server () (fun _dir sock t ->
      (* every append dies on an injected I/O fault: the update must come
         back as a structured storage error, the daemon keeps serving *)
      Server.set_update_io t (fun () ->
          Ftindex.Store.Io.with_fault ~at:1 Ftindex.Store.Io.Io_error);
      let e =
        ok_failure "faulted update"
          (send_update sock
             [ Ftindex.Wal.Add_doc { uri = "b.xml"; source = zebra_doc } ])
      in
      Alcotest.(check bool)
        (Printf.sprintf "structured storage code (got %s)" e.Protocol.code)
        true
        (List.mem e.Protocol.code
           [ "gtlx:GTLX0006"; "gtlx:GTLX0007"; "gtlx:GTLX0008"; "err:FODC0002" ]);
      Alcotest.(check bool) "error counted" true (stat t "update_errors" >= 1);
      (* heal the I/O layer: the daemon recovers without a restart *)
      Server.set_update_io t (fun () -> Ftindex.Store.Io.real ());
      poll "engine re-synced" (fun () ->
          match
            send_update sock
              [ Ftindex.Wal.Add_doc { uri = "b.xml"; source = zebra_doc } ]
          with
          | Ok (Protocol.Update_reply _) -> true
          | _ -> false);
      let v = ok_value "healed" (ask sock {|collection()//title[. ftcontains "zebra"]|}) in
      Alcotest.(check (list string))
        "update served after healing" [ "<title>Zebra quokka</title>" ]
        v.Protocol.items)

(* Satellite: the maintenance ticker reloads with zero in-flight requests
   and every worker parked — maintenance is on neither the accept nor the
   request path. *)
let test_ticker_reloads_while_workers_parked () =
  let g = gate () in
  with_server
    ~tweak:(fun c -> { c with workers = 2; on_request = gate_hook g })
    ()
    (fun dir sock t ->
      let spawn () =
        Thread.create (fun () -> ignore (ask sock title_query)) ()
      in
      let t1 = spawn () and t2 = spawn () in
      poll "every worker parked" (fun () -> Atomic.get g.picked = 2);
      save_corpus ~dir corpus_v2;
      Server.request_reload t;
      poll "reloaded with all workers parked" (fun () -> Server.generation t = 2);
      open_gate g;
      Thread.join t1;
      Thread.join t2)

(* Satellite: an idle daemon's watcher notices a new generation with no
   request traffic at all. *)
let test_idle_watcher_reloads () =
  with_server ~tweak:(fun c -> { c with watch_generation = true }) ()
    (fun dir _sock t ->
      Alcotest.(check int) "no requests in flight" 0 (stat t "accepted");
      save_corpus ~dir corpus_v2;
      poll "idle daemon reloaded" (fun () -> Server.generation t = 2);
      Alcotest.(check int) "still zero requests" 0 (stat t "accepted"))

(* Satellite: the client's retry loop rides out a daemon restart — the
   socket is gone entirely between stop and start, so every interim
   attempt fails at connect, not with a shed. *)
let test_client_survives_daemon_restart () =
  with_dir (fun dir ->
      save_corpus ~dir corpus_v1;
      let sock = fresh_name "gtx" ^ ".sock" in
      let cfg = Server.default_config ~index_dir:dir ~socket_path:sock in
      let t = Server.start cfg in
      ignore (ok_value "before restart" (ask sock title_query));
      Server.stop t;
      Alcotest.(check bool) "socket gone" false (Sys.file_exists sock);
      let result = ref (Error "pending") in
      let attempts = Atomic.make 0 in
      let client =
        Thread.create
          (fun () ->
            result :=
              Client.query ~socket_path:sock ~retries:500
                ~sleep:(fun _ ->
                  Atomic.incr attempts;
                  Thread.delay 0.01)
                (Protocol.query_request title_query))
          ()
      in
      (* let the client bang on the missing socket a few times first *)
      poll "client retrying against dead socket" (fun () ->
          Atomic.get attempts >= 3);
      let t = Server.start cfg in
      Thread.join client;
      let v = ok_value "served after restart" !result in
      Alcotest.(check (list string))
        "same answer as before" [ "<title>Usability testing</title>" ]
        v.Protocol.items;
      Server.stop t)

(* Satellite: the pure backoff bound — within [base, cap], monotonically
   non-decreasing, deterministic.  Runs under qcheck's seed control, so a
   failure reproduces from the printed seed. *)
let prop_backoff_bounds =
  QCheck2.Test.make ~name:"client backoff bounds" ~count:300
    QCheck2.Gen.(
      triple (int_range 1 5000) (int_range 1 60_000) (int_range 1 50))
    (fun (base_ms, cap_ms, attempts) ->
      let lo = float_of_int base_ms /. 1000. in
      let hi = float_of_int (max base_ms cap_ms) /. 1000. in
      let rec check k prev =
        if k > attempts then true
        else
          let b = Client.backoff_bound ~base_ms ~cap_ms ~attempt:k in
          let again = Client.backoff_bound ~base_ms ~cap_ms ~attempt:k in
          b = again (* deterministic *)
          && b >= lo -. 1e-9
          && b <= hi +. 1e-9
          && b >= prev -. 1e-9 (* never shrinks as attempts grow *)
          && check (k + 1) b
      in
      check 1 0.0)

(* A client that requests a reply far bigger than the kernel socket
   buffers and then never reads: the daemon's reply write must expire
   against the per-connection deadline, drop the connection, and count
   it — not wedge a worker forever. *)
let test_slow_client_reply_disconnect () =
  with_server
    ~tweak:(fun c ->
      { c with Server.recv_timeout = 0.5; Server.idle_timeout = 0.3 })
    ()
    (fun _dir sock t ->
      let limits = Netio.within 3.0 in
      let fd = Netio.connect ~limits sock in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* ~1.4 MB of reply, well past any socket buffer *)
          let big =
            "string-join(for $i in 1 to 80000 return \
             \"0123456789abcdef\", \" \")"
          in
          Netio.write_frame ~limits fd
            (Protocol.encode_request
               (Protocol.Query (Protocol.query_request big)));
          let rec wait tries =
            if stat t "slow_client_disconnects" = 1 then ()
            else if tries = 0 then
              Alcotest.fail "timeout waiting for slow_client_disconnects"
            else begin
              Thread.delay 0.02;
              wait (tries - 1)
            end
          in
          wait 250;
          (* the worker came back: a well-behaved request still answers *)
          match
            Client.request ~recv_timeout:5.0 ~socket_path:sock
              (Protocol.Query (Protocol.query_request "1 + 1"))
          with
          | Ok (Protocol.Value v) ->
              Alcotest.(check (list string)) "served after the slow client"
                [ "2" ] v.Protocol.items
          | _ -> Alcotest.fail "daemon wedged after a slow client"))

let tests =
  [
    Alcotest.test_case "protocol round trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "breaker state machine" `Quick test_breaker_state_machine;
    Alcotest.test_case "breaker half-open single probe" `Quick
      test_breaker_half_open_single_probe;
    Alcotest.test_case "basic round trip" `Quick test_basic_round_trip;
    Alcotest.test_case "stats over wire" `Quick test_stats_over_wire;
    Alcotest.test_case "malformed and torn clients" `Quick
      test_malformed_and_torn_clients;
    Alcotest.test_case "admission control" `Quick test_admission_control;
    Alcotest.test_case "client backoff retries" `Quick
      test_client_backoff_retries;
    Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
    Alcotest.test_case "hot reload" `Quick test_hot_reload;
    Alcotest.test_case "reload watcher" `Quick test_reload_watcher;
    Alcotest.test_case "reload failure keeps old engine" `Quick
      test_reload_failure_keeps_old_engine;
    Alcotest.test_case "counters survive hot reload" `Quick
      test_counters_survive_reload;
    Alcotest.test_case "metrics exposition and slowlog" `Quick
      test_metrics_and_slowlog;
    Alcotest.test_case "graceful shutdown" `Quick test_graceful_shutdown;
    Alcotest.test_case "chaos" `Quick test_chaos;
    Alcotest.test_case "concurrent fallback counter" `Quick
      test_engine_fallback_counter_threadsafe;
    Alcotest.test_case "update over wire" `Quick test_update_over_wire;
    Alcotest.test_case "update survives restart" `Quick
      test_update_survives_restart;
    Alcotest.test_case "concurrent updates single-writer" `Quick
      test_concurrent_updates_single_writer;
    Alcotest.test_case "threshold background compaction" `Quick
      test_threshold_background_compaction;
    Alcotest.test_case "update fault is structured" `Quick
      test_update_fault_is_structured;
    Alcotest.test_case "ticker reloads with workers parked" `Quick
      test_ticker_reloads_while_workers_parked;
    Alcotest.test_case "idle watcher reloads" `Quick test_idle_watcher_reloads;
    Alcotest.test_case "client survives daemon restart" `Quick
      test_client_survives_daemon_restart;
    Alcotest.test_case "slow client reply write disconnects" `Quick
      test_slow_client_reply_disconnect;
    QCheck_alcotest.to_alcotest prop_backoff_bounds;
  ]
