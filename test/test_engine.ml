(* The engine façade: document resolution, collection(), context selection,
   optimization flags, highlighting through queries, error propagation. *)

open Galatex

let engine = lazy (Corpus.Usecases.engine ())

let run ?strategy ?optimizations ?context src =
  Xquery.Value.to_display_string
    (Engine.run (Lazy.force engine) ?strategy ?optimizations ?context src)

let check_string = Alcotest.check Alcotest.string
let check_bool = Alcotest.check Alcotest.bool

let test_default_context_is_first_doc () =
  (* //book with no explicit context resolves against book1.xml *)
  check_string "default" "1" (run {|string(//book/@number)|});
  check_string "explicit context" "3"
    (run ~context:"book3.xml" {|string(//book/@number)|})

let test_collection () =
  check_string "all docs" "3" (run {|count(collection()//book)|});
  check_string "collection independent of context" "3"
    (run ~context:"book2.xml" {|count(collection()//book)|})

let test_doc_function () =
  check_string "fn:doc by uri" "2" (run {|string(doc("book2.xml")//book/@number)|});
  match Engine.run (Lazy.force engine) {|doc("missing.xml")|} with
  | exception Xquery.Errors.Error { code = Xquery.Errors.FODC0002; _ } -> ()
  | _ -> Alcotest.fail "missing document must raise FODC0002"

let test_optimization_flags_preserve () =
  let q = {|count(collection()//book[. ftcontains "usability" || "databases"])|} in
  let plain = run q in
  check_string "all optimizations" plain
    (run ~optimizations:Engine.all_optimizations q);
  check_string "no optimizations" plain (run ~optimizations:Engine.no_optimizations q)

let test_translate_to_text_round_trip () =
  let src = {|//book[. ftcontains "x" && "y" window 3 words]/title|} in
  let text = Engine.translate_to_text src in
  check_bool "mentions FTWindow" true
    (let rec has i =
       i + 12 <= String.length text
       && (String.sub text i 12 = "fts:FTWindow" || has (i + 1))
     in
     has 0);
  (* the translated text is valid XQuery *)
  ignore (Xquery.Parser.parse_query text)

let test_parse_error_propagates () =
  match Engine.run (Lazy.force engine) "//book[" with
  | exception Xquery.Errors.Error { code = Xquery.Errors.XPST0003; _ } -> ()
  | _ -> Alcotest.fail "parse error must surface as XPST0003"

let test_ft_error_on_bad_weight () =
  match
    Engine.run (Lazy.force engine) {|ft:score(//book, "x" weight 3.0)|}
  with
  | exception Xquery.Errors.Error { code = Xquery.Errors.FTDY0016; _ } -> ()
  | _ -> Alcotest.fail "weight outside [0,1] must raise FTDY0016"

let test_empty_corpus () =
  let empty = Engine.of_strings [] in
  check_string "collection empty" "0"
    (Xquery.Value.to_display_string (Engine.run empty {|count(collection())|}))

let test_selection_all_matches_guard () =
  match
    Engine.selection_all_matches (Lazy.force engine) {|"a" madeupsyntax|}
      ~context_nodes:()
  with
  | exception (Xquery.Parser.Error _ | Invalid_argument _) -> ()
  | _ -> Alcotest.fail "garbage selection must raise"

let test_strategies_share_resolver () =
  (* the translated path can read the corpus AND the generated documents *)
  check_string "fn:doc in translated strategy" "3"
    (run ~strategy:Engine.Translated {|count(collection()//book)|});
  check_string "invlist doc visible" "true"
    (run ~strategy:Engine.Translated
       {|exists(fn:doc("list_distinct_words.xml")/ListDistinctWords)|})

let test_segmenter_config_respected () =
  (* index with titles ignored: words in titles are unsearchable *)
  let eng =
    Engine.of_strings
      ~config:
        {
          Tokenize.Segmenter.default_config with
          Tokenize.Segmenter.ignore_elements = [ "title" ];
        }
      [ ("d.xml", "<doc><title>secret</title><p>visible words</p></doc>") ]
  in
  check_string "title word invisible" "false"
    (Xquery.Value.to_display_string
       (Engine.run eng {|//doc ftcontains "secret"|}));
  check_string "body word visible" "true"
    (Xquery.Value.to_display_string
       (Engine.run eng {|//doc ftcontains "visible"|}))

let tests =
  [
    Alcotest.test_case "default context" `Quick test_default_context_is_first_doc;
    Alcotest.test_case "collection()" `Quick test_collection;
    Alcotest.test_case "fn:doc resolution" `Quick test_doc_function;
    Alcotest.test_case "optimization flags preserve results" `Quick
      test_optimization_flags_preserve;
    Alcotest.test_case "translate_to_text" `Quick test_translate_to_text_round_trip;
    Alcotest.test_case "parse errors propagate" `Quick test_parse_error_propagates;
    Alcotest.test_case "invalid weight" `Quick test_ft_error_on_bad_weight;
    Alcotest.test_case "empty corpus" `Quick test_empty_corpus;
    Alcotest.test_case "selection parse guard" `Quick test_selection_all_matches_guard;
    Alcotest.test_case "resolver in translated strategy" `Quick
      test_strategies_share_resolver;
    Alcotest.test_case "segmenter config respected" `Quick
      test_segmenter_config_respected;
  ]
