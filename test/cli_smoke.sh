#!/usr/bin/env bash
# End-to-end CLI robustness smoke: structured errors and exit codes for
# document-loading failures, and the persistent-index lifecycle including
# corruption detection / salvage (exit codes: 1 static, 2 dynamic).
set -u
case "$1" in
  /*) GX="$1" ;;
  *) GX="$PWD/$1" ;;
esac
fails=0

expect_exit() { # expect_exit NAME WANT ACTUAL
  if [ "$3" -ne "$2" ]; then
    echo "FAIL $1: expected exit $2, got $3" >&2
    fails=$((fails + 1))
  else
    echo "ok   $1 (exit $3)"
  fi
}

work=$(mktemp -d "$PWD/cli-smoke-XXXXXX")
# every background daemon registers its PID here; the trap kills them all
# on ANY exit path — a failing check must never leave daemons running
daemons=""
cleanup() {
  for pid in $daemons; do kill -9 "$pid" 2>/dev/null; done
  wait 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT
cd "$work"

cat > a.xml <<'EOF'
<book><title>Usability testing</title><p>Software usability and testing of web site design requirements.</p></book>
EOF
cat > b.xml <<'EOF'
<book><title>Web design</title><p>Practical web design including usability goals and testing plans.</p></book>
EOF
printf '<book><open>' > bad.xml

# --- document-loading failures are structured, not raw exceptions ---
"$GX" query -d no-such-file.xml '//title' 2>err.txt
expect_exit "missing --document is dynamic (FODC0002)" 2 $?
grep -q 'err:FODC0002' err.txt || { echo "FAIL: FODC0002 not reported" >&2; fails=$((fails+1)); }

"$GX" query -d bad.xml '//title' 2>err.txt
expect_exit "malformed XML is static (XPST0003)" 1 $?
grep -q 'err:XPST0003' err.txt || { echo "FAIL: XPST0003 not reported" >&2; fails=$((fails+1)); }

# --- persisted index lifecycle ---
"$GX" index -d a.xml -d b.xml --output snap >/dev/null
expect_exit "index --output" 0 $?

out=$("$GX" query --index snap '//title[. ftcontains "usability"]')
expect_exit "query --index" 0 $?
[ "$out" = "<title>Usability testing</title>" ] || { echo "FAIL: wrong query result: $out" >&2; fails=$((fails+1)); }

"$GX" query --index snap --report '//title[. ftcontains "usability"]' 2>rep.txt >/dev/null
grep -q 'fallbacks-total=' rep.txt || { echo "FAIL: --report missing fallbacks-total" >&2; fails=$((fails+1)); }
grep -q 'storage: snapshot loaded clean' rep.txt || { echo "FAIL: --report missing storage line" >&2; fails=$((fails+1)); }

# --- tracing: human tree on stderr, JSON span tree + counters on stdout ---
out=$("$GX" query --index snap --trace '//title[. ftcontains "usability"]' 2>trace.txt)
expect_exit "query --trace" 0 $?
[ "$out" = "<title>Usability testing</title>" ] || { echo "FAIL: --trace changed the answer: $out" >&2; fails=$((fails+1)); }
grep -q 'query' trace.txt || { echo "FAIL: --trace missing root span" >&2; fails=$((fails+1)); }
grep -q 'ft_eval' trace.txt || { echo "FAIL: --trace missing ft_eval span" >&2; fails=$((fails+1)); }

"$GX" query --index snap --trace-json '//title[. ftcontains "usability"]' >trace.json
expect_exit "query --trace-json" 0 $?
grep -q '"name":"query"' trace.json || { echo "FAIL: --trace-json missing query span" >&2; fails=$((fails+1)); }
grep -q '"allmatches_materialized":' trace.json || { echo "FAIL: --trace-json missing counters" >&2; fails=$((fails+1)); }
grep -q '"postings_read":' trace.json || { echo "FAIL: --trace-json missing postings_read" >&2; fails=$((fails+1)); }

# pushdown visibly shrinks materialization on a selective windowed FTOr
PDQ='count(//p[. ftcontains ("software" && "usability" || "testing" && "design") window 2 words])'
plain=$("$GX" query --index snap --trace-json "$PDQ" | sed 's/.*"allmatches_materialized":\([0-9]*\).*/\1/')
opt=$("$GX" query --index snap --trace-json --optimize "$PDQ" | sed 's/.*"allmatches_materialized":\([0-9]*\).*/\1/')
[ "$opt" -lt "$plain" ] || { echo "FAIL: --optimize did not reduce materialization ($plain -> $opt)" >&2; fails=$((fails+1)); }

"$GX" query --server nowhere.sock --trace '//title' 2>/dev/null
[ $? -ne 0 ] || { echo "FAIL: --trace with --server should be rejected" >&2; fails=$((fails+1)); }

# --- corrupt a posting segment: salvaged, same answer, damage reported ---
post_seg=$(ls snap/post-*.seg | head -1)
dd if=/dev/zero of="$post_seg" bs=1 seek=40 count=4 conv=notrunc 2>/dev/null
out=$("$GX" query --index snap '//title[. ftcontains "usability"]' 2>err.txt)
expect_exit "salvaged query" 0 $?
[ "$out" = "<title>Usability testing</title>" ] || { echo "FAIL: salvage changed the answer: $out" >&2; fails=$((fails+1)); }
grep -q 'salvaged snapshot' err.txt || { echo "FAIL: salvage not reported" >&2; fails=$((fails+1)); }
grep -q '^warning: ' err.txt || { echo "FAIL: salvage warning not a one-line 'warning:'" >&2; fails=$((fails+1)); }

# --- --quiet silences the salvage warning (result unchanged) ---
out=$("$GX" query --index snap --quiet '//title[. ftcontains "usability"]' 2>err.txt)
expect_exit "salvaged query with --quiet" 0 $?
[ "$out" = "<title>Usability testing</title>" ] || { echo "FAIL: --quiet changed the answer: $out" >&2; fails=$((fails+1)); }
grep -q 'warning:' err.txt && { echo "FAIL: --quiet did not silence the salvage warning" >&2; fails=$((fails+1)); }

# --- corrupt a document segment: fatal without sources, salvaged with ---
doc_seg=$(ls snap/doc-*.seg | head -1)
dd if=/dev/zero of="$doc_seg" bs=1 seek=40 count=4 conv=notrunc 2>/dev/null
"$GX" query --index snap '//title[. ftcontains "usability"]' 2>err.txt
expect_exit "corrupt doc segment without sources (GTLX0006)" 2 $?
grep -q 'gtlx:GTLX0006' err.txt || { echo "FAIL: GTLX0006 not reported" >&2; fails=$((fails+1)); }

out=$("$GX" query --index snap -d a.xml -d b.xml '//title[. ftcontains "usability"]' 2>/dev/null)
expect_exit "salvage with --document sources" 0 $?
[ "$out" = "<title>Usability testing</title>" ] || { echo "FAIL: source salvage changed the answer: $out" >&2; fails=$((fails+1)); }

# --- missing manifest: incomplete snapshot ---
rm snap/MANIFEST
"$GX" query --index snap '//title' 2>err.txt
expect_exit "missing manifest (GTLX0008)" 2 $?
grep -q 'gtlx:GTLX0008' err.txt || { echo "FAIL: GTLX0008 not reported" >&2; fails=$((fails+1)); }

# --- server lifecycle: serve, query over the socket, SIGHUP hot reload,
# --- SIGTERM graceful shutdown (exit 0, no leftover socket) ---
"$GX" index -d a.xml -d b.xml --output srvsnap >/dev/null
expect_exit "index for serving" 0 $?

# --slow-threshold 0: every query lands in the slow-query log
"$GX" serve --index srvsnap --socket srv.sock --slow-threshold 0 2>serve.log &
SRV=$!; daemons="$daemons $SRV"
for _ in $(seq 1 100); do [ -S srv.sock ] && break; sleep 0.1; done
[ -S srv.sock ] || { echo "FAIL: daemon never bound its socket" >&2; cat serve.log >&2; fails=$((fails+1)); }

out=$("$GX" query --server srv.sock --retries 2 '//title[. ftcontains "usability"]')
expect_exit "query over the socket" 0 $?
[ "$out" = "<title>Usability testing</title>" ] || { echo "FAIL: wrong served result: $out" >&2; fails=$((fails+1)); }

"$GX" stats --server srv.sock | grep -q '^generation 1$' || { echo "FAIL: stats missing generation 1" >&2; fails=$((fails+1)); }

# --- metrics scrape: the query above is visible in the exposition and
# --- in the slow-query log (threshold 0 logs everything)
"$GX" stats --server srv.sock --metrics >metrics.txt
expect_exit "stats --metrics" 0 $?
grep -q '^galatex_queries_total 1$' metrics.txt || { echo "FAIL: galatex_queries_total not incremented" >&2; fails=$((fails+1)); }
grep -q '^galatex_engine_postings_read_total [1-9]' metrics.txt || { echo "FAIL: engine counters missing from metrics" >&2; fails=$((fails+1)); }
grep -q 'galatex_query_duration_seconds_count{strategy="materialized"} 1' metrics.txt || { echo "FAIL: per-strategy histogram missing" >&2; fails=$((fails+1)); }
"$GX" stats --server srv.sock --slowlog | grep -q 'strategy=materialized' || { echo "FAIL: slow-query log empty under zero threshold" >&2; fails=$((fails+1)); }

# --- network deadlines: one-shots against a blackholed endpoint must
# --- fail fast with the structured resource code gtlx:GTLX0014 (exit 4),
# --- never hang — the faultnet proxy is the accept-then-hang endpoint
"$GX" faultnet hole.sock srv.sock --blackhole 2>hole.log &
FN=$!; daemons="$daemons $FN"
for _ in $(seq 1 100); do [ -S hole.sock ] && break; sleep 0.1; done
[ -S hole.sock ] || { echo "FAIL: faultnet never bound its socket" >&2; cat hole.log >&2; fails=$((fails+1)); }

timeout 10 "$GX" stats --server hole.sock --io-timeout 0.5 2>err.txt
expect_exit "stats against a blackhole is resource (GTLX0014, exit 4)" 4 $?
grep -q 'gtlx:GTLX0014' err.txt || { echo "FAIL: stats deadline not tagged GTLX0014" >&2; cat err.txt >&2; fails=$((fails+1)); }

timeout 10 "$GX" stats --server hole.sock --health --io-timeout 0.5 2>err.txt
expect_exit "stats --health against a blackhole exits 4" 4 $?
grep -q 'gtlx:GTLX0014' err.txt || { echo "FAIL: health deadline not tagged GTLX0014" >&2; cat err.txt >&2; fails=$((fails+1)); }

# a query through the blackhole is cut by the client-side deadline too
timeout 10 "$GX" query --server hole.sock --timeout 0.5 '//title' 2>err.txt
rc=$?
[ "$rc" -ne 0 ] && [ "$rc" -ne 124 ] || { echo "FAIL: blackholed query hung or succeeded (rc $rc)" >&2; fails=$((fails+1)); }

kill -TERM $FN
wait $FN 2>/dev/null
expect_exit "faultnet exits 0 on SIGTERM" 0 $?

# the daemon behind the proxy was never harmed
"$GX" stats --server srv.sock | grep -q '^generation 1$' || { echo "FAIL: daemon unhealthy after blackhole drill" >&2; fails=$((fails+1)); }

# a new snapshot generation lands in the directory; SIGHUP hot-reloads it
"$GX" index -d b.xml --output srvsnap >/dev/null
kill -HUP $SRV
reloaded=0
for _ in $(seq 1 100); do
  if "$GX" stats --server srv.sock 2>/dev/null | grep -q '^generation 2$'; then reloaded=1; break; fi
  sleep 0.1
done
[ "$reloaded" -eq 1 ] || { echo "FAIL: SIGHUP reload never reached generation 2" >&2; cat serve.log >&2; fails=$((fails+1)); }

out=$("$GX" query --server srv.sock '//title[. ftcontains "design"]')
expect_exit "query sees the reloaded snapshot" 0 $?
[ "$out" = "<title>Web design</title>" ] || { echo "FAIL: stale data after reload: $out" >&2; fails=$((fails+1)); }

# graceful shutdown: drains, exits 0, removes the socket
kill -TERM $SRV
wait $SRV
expect_exit "daemon exits 0 on SIGTERM" 0 $?
[ -e srv.sock ] && { echo "FAIL: socket file left behind after shutdown" >&2; fails=$((fails+1)); }

"$GX" query --server srv.sock '//title' 2>err.txt
expect_exit "query against a dead socket is dynamic (FODC0002)" 2 $?
grep -q 'err:FODC0002' err.txt || { echo "FAIL: dead-socket error not structured" >&2; fails=$((fails+1)); }

# --- live updates: every acknowledged update survives kill -9 ---
# Apply N updates through the write-ahead log, kill the daemon with
# SIGKILL (no drain, no flush), then verify the recovered index answers
# exactly like a from-scratch re-index of the acknowledged documents.
cat > u1.xml <<'EOF'
<book><title>Axolotl care</title><p>axolotl habitats and feeding.</p></book>
EOF
cat > u2.xml <<'EOF'
<book><title>Axolotl biology</title><p>regeneration in the axolotl.</p></book>
EOF
cat > u3.xml <<'EOF'
<book><title>Axolotl myths</title><p>stories about the axolotl.</p></book>
EOF
UQ='collection()//title[. ftcontains "axolotl"]'

"$GX" index -d a.xml --output updsnap >/dev/null
expect_exit "index for live updates" 0 $?

"$GX" serve --index updsnap --socket upd.sock 2>upd-serve.log &
USRV=$!; daemons="$daemons $USRV"
for _ in $(seq 1 100); do [ -S upd.sock ] && break; sleep 0.1; done
[ -S upd.sock ] || { echo "FAIL: update daemon never bound its socket" >&2; cat upd-serve.log >&2; fails=$((fails+1)); }

for f in u1.xml u2.xml u3.xml; do
  "$GX" update --server upd.sock -a "$f" >ack.txt
  expect_exit "update --server $f" 0 $?
  grep -q '^acknowledged 1 operation' ack.txt || { echo "FAIL: $f not acknowledged" >&2; fails=$((fails+1)); }
done

kill -9 $USRV
wait $USRV 2>/dev/null
# SIGKILL leaves the socket file behind: remove it so the bind-wait below
# observes the restarted daemon, not the corpse
rm -f upd.sock

"$GX" index -d a.xml -d u1.xml -d u2.xml -d u3.xml --output freshsnap >/dev/null
want=$("$GX" query --index freshsnap "$UQ")
got=$("$GX" query --index updsnap "$UQ" 2>/dev/null)
expect_exit "query on the recovered index" 0 $?
[ "$got" = "$want" ] || { echo "FAIL: recovery diverged from re-index: [$got] vs [$want]" >&2; fails=$((fails+1)); }

# a restarted daemon serves the recovered state and can fold it away
"$GX" serve --index updsnap --socket upd.sock 2>>upd-serve.log &
USRV=$!; daemons="$daemons $USRV"
for _ in $(seq 1 100); do [ -S upd.sock ] && break; sleep 0.1; done
"$GX" stats --server upd.sock | grep -q '^wal_records 3$' || { echo "FAIL: recovered log not mirrored in stats" >&2; fails=$((fails+1)); }

got=$("$GX" query --server upd.sock --retries 2 "$UQ")
expect_exit "restarted daemon serves recovered updates" 0 $?
[ "$got" = "$want" ] || { echo "FAIL: served recovery diverged: [$got] vs [$want]" >&2; fails=$((fails+1)); }

"$GX" update --server upd.sock --compact >ack.txt
expect_exit "update --compact over the socket" 0 $?
grep -q '^compacted: 3 record(s) folded into generation 2$' ack.txt || { echo "FAIL: compaction not reported: $(cat ack.txt)" >&2; fails=$((fails+1)); }

got=$("$GX" query --server upd.sock "$UQ")
[ "$got" = "$want" ] || { echo "FAIL: compaction changed the answer: [$got] vs [$want]" >&2; fails=$((fails+1)); }

kill -TERM $USRV
wait $USRV
expect_exit "update daemon exits 0 on SIGTERM" 0 $?

# offline form: append to the log directly, no daemon involved
"$GX" update --index updsnap -r u3.xml >ack.txt
expect_exit "offline update --index" 0 $?
grep -q '^appended 1 operation' ack.txt || { echo "FAIL: offline update not reported" >&2; fails=$((fails+1)); }

"$GX" index -d a.xml -d u1.xml -d u2.xml --output freshsnap2 >/dev/null
want=$("$GX" query --index freshsnap2 "$UQ")
got=$("$GX" query --index updsnap "$UQ" 2>/dev/null)
[ "$got" = "$want" ] || { echo "FAIL: offline removal diverged: [$got] vs [$want]" >&2; fails=$((fails+1)); }

# a half-written trailing record (torn tail) is dropped silently
printf 'torn' >> updsnap/WAL
got=$("$GX" query --index updsnap "$UQ" 2>/dev/null)
expect_exit "torn WAL tail recovered" 0 $?
[ "$got" = "$want" ] || { echo "FAIL: torn tail changed the answer: [$got] vs [$want]" >&2; fails=$((fails+1)); }

# mid-log corruption is a structured dynamic error, never a wrong answer
# (bytes 8-9 are the first bytes of the header payload — the log magic)
dd if=/dev/zero of=updsnap/WAL bs=1 seek=8 count=2 conv=notrunc 2>/dev/null
"$GX" query --index updsnap "$UQ" 2>err.txt
expect_exit "corrupt WAL is dynamic (GTLX0010)" 2 $?
grep -q 'gtlx:GTLX0010' err.txt || { echo "FAIL: GTLX0010 not reported" >&2; fails=$((fails+1)); }

# --- cluster lifecycle: shard the corpus, serve it behind the router,
# --- lose a shard (partial, GTLX0011), restart it (full), roll a reload
# --- over SIGHUP with zero failed queries ---
for i in 1 2 3 4 5 6; do
  printf '<book><title>Cluster %d</title><p>cluster usability item %d</p></book>' "$i" "$i" > "c$i.xml"
done
"$GX" index -d c1.xml -d c2.xml -d c3.xml -d c4.xml -d c5.xml -d c6.xml \
  --shards 2 --output clu >/dev/null
expect_exit "index --shards 2" 0 $?
[ -d clu/shard-0 ] && [ -d clu/shard-1 ] || { echo "FAIL: sharded index layout missing" >&2; fails=$((fails+1)); }

"$GX" serve --index clu/shard-0 --socket s0.sock 2>s0.log & S0=$!; daemons="$daemons $S0"
"$GX" serve --index clu/shard-1 --socket s1.sock 2>s1.log & S1=$!; daemons="$daemons $S1"
for _ in $(seq 1 100); do [ -S s0.sock ] && [ -S s1.sock ] && break; sleep 0.1; done
[ -S s0.sock ] && [ -S s1.sock ] || { echo "FAIL: shard daemons never bound" >&2; cat s0.log s1.log >&2; fails=$((fails+1)); }

"$GX" route --shard s0.sock --shard s1.sock --socket rt.sock 2>rt.log & RT=$!; daemons="$daemons $RT"
for _ in $(seq 1 100); do [ -S rt.sock ] && break; sleep 0.1; done
[ -S rt.sock ] || { echo "FAIL: router never bound its socket" >&2; cat rt.log >&2; fails=$((fails+1)); }

CQ='count(collection()//book)'
out=$("$GX" query --server rt.sock --retries 2 "$CQ" 2>err.txt)
expect_exit "routed count over 2 shards" 0 $?
[ "$out" = "6" ] || { echo "FAIL: routed count wrong: $out" >&2; fails=$((fails+1)); }
grep -q 'warning:' err.txt && { echo "FAIL: healthy cluster answered partial" >&2; fails=$((fails+1)); }

"$GX" stats --server rt.sock --health | grep -q '^generation 1$' || { echo "FAIL: cluster health missing generation 1" >&2; fails=$((fails+1)); }

# kill -9 one shard: the query degrades to a partial (exit 0) that names
# the missing partition with GTLX0011 on stderr — never a hard failure
kill -9 $S1
wait $S1 2>/dev/null
"$GX" query --server rt.sock "$CQ" >/dev/null 2>err.txt
expect_exit "degraded query after shard kill -9" 0 $?
grep -q 'gtlx:GTLX0011' err.txt || { echo "FAIL: partial not tagged GTLX0011" >&2; cat err.txt >&2; fails=$((fails+1)); }
grep -Fq 'missing partition(s) 1' err.txt || { echo "FAIL: partial does not name partition 1" >&2; cat err.txt >&2; fails=$((fails+1)); }

# restart the shard: full answers come back once its breaker re-probes
rm -f s1.sock
"$GX" serve --index clu/shard-1 --socket s1.sock 2>>s1.log & S1=$!; daemons="$daemons $S1"
recovered=0
for _ in $(seq 1 100); do
  out=$("$GX" query --server rt.sock --retries 2 "$CQ" 2>err.txt)
  if [ "$out" = "6" ] && ! grep -q 'warning:' err.txt; then recovered=1; break; fi
  sleep 0.1
done
[ "$recovered" -eq 1 ] || { echo "FAIL: cluster never recovered after shard restart" >&2; cat rt.log >&2; fails=$((fails+1)); }

# rolling reload over SIGHUP while a query stream runs: every query in
# the stream must come back complete — N-1 shards always serve the roll
: > roll-fails.txt
(
  for _ in $(seq 1 25); do
    o=$("$GX" query --server rt.sock --retries 3 "$CQ" 2>w.txt) || echo "hard failure" >> roll-fails.txt
    [ "$o" = "6" ] || echo "wrong answer: $o" >> roll-fails.txt
    grep -q 'warning:' w.txt && echo "partial during roll" >> roll-fails.txt
  done
) &
QL=$!
sleep 0.2
kill -HUP $RT
wait $QL
[ -s roll-fails.txt ] && { echo "FAIL: queries failed during rolling reload:" >&2; sort roll-fails.txt | uniq -c >&2; fails=$((fails+1)); }

rolled=0
for _ in $(seq 1 100); do
  if "$GX" stats --server s0.sock 2>/dev/null | grep -q '^reloads 1$' \
     && "$GX" stats --server s1.sock 2>/dev/null | grep -q '^reloads 1$'; then rolled=1; break; fi
  sleep 0.1
done
[ "$rolled" -eq 1 ] || { echo "FAIL: rolling reload did not reach every shard" >&2; cat rt.log >&2; fails=$((fails+1)); }

# graceful teardown: router exits 0 and removes its socket
kill -TERM $RT
wait $RT
expect_exit "router exits 0 on SIGTERM" 0 $?
[ -e rt.sock ] && { echo "FAIL: router socket left behind" >&2; fails=$((fails+1)); }
kill -TERM $S0 $S1
wait $S0 $S1 2>/dev/null

# --- replication: a follower bootstraps an EMPTY directory from its
# --- primary over the wire, tails the write-ahead log, converges to the
# --- same (generation, seq, manifest CRC), and rejects writes ---
"$GX" index -d a.xml -d b.xml --output repsnap >/dev/null
expect_exit "index for replication" 0 $?

"$GX" serve --index repsnap --socket pri.sock 2>pri.log & PRI=$!; daemons="$daemons $PRI"
for _ in $(seq 1 100); do [ -S pri.sock ] && break; sleep 0.1; done
[ -S pri.sock ] || { echo "FAIL: replication primary never bound" >&2; cat pri.log >&2; fails=$((fails+1)); }

# repdir does not exist: the follower must pull the snapshot to create it
"$GX" serve --index repdir --socket fol.sock --follow pri.sock 2>fol.log & FOL=$!; daemons="$daemons $FOL"
for _ in $(seq 1 100); do [ -S fol.sock ] && break; sleep 0.1; done
[ -S fol.sock ] || { echo "FAIL: follower never bound (bootstrap failed?)" >&2; cat fol.log >&2; fails=$((fails+1)); }

"$GX" stats --server fol.sock --health | grep -q '^role replica$' || { echo "FAIL: follower health missing replica role" >&2; fails=$((fails+1)); }
"$GX" stats --server pri.sock --health | grep -q '^role primary$' || { echo "FAIL: primary health missing primary role" >&2; fails=$((fails+1)); }

# stream updates at the primary; the follower tails them within ticks
for f in u1.xml u2.xml u3.xml; do
  "$GX" update --server pri.sock -a "$f" >/dev/null
  expect_exit "replicated update $f" 0 $?
done

fingerprint() { "$GX" stats --server "$1" --health 2>/dev/null | grep -E '^(generation|seq|manifest_crc) '; }
converged=0
for _ in $(seq 1 100); do
  if [ -n "$(fingerprint pri.sock)" ] && [ "$(fingerprint pri.sock)" = "$(fingerprint fol.sock)" ]; then converged=1; break; fi
  sleep 0.1
done
[ "$converged" -eq 1 ] || { echo "FAIL: follower never converged: [$(fingerprint pri.sock)] vs [$(fingerprint fol.sock)]" >&2; cat fol.log >&2; fails=$((fails+1)); }

want=$("$GX" query --server pri.sock "$UQ")
got=$("$GX" query --server fol.sock "$UQ")
expect_exit "query on the follower" 0 $?
[ "$got" = "$want" ] || { echo "FAIL: follower answers diverge: [$got] vs [$want]" >&2; fails=$((fails+1)); }

# the follower is read-only: updates are refused with a structured error
"$GX" update --server fol.sock -a u1.xml 2>err.txt
expect_exit "follower rejects updates (FODC0002)" 2 $?
grep -q 'err:FODC0002' err.txt || { echo "FAIL: follower rejection not structured" >&2; fails=$((fails+1)); }

# a primary compaction moves the base generation; the follower re-syncs
"$GX" update --server pri.sock --compact >/dev/null
expect_exit "primary compaction" 0 $?
resynced=0
for _ in $(seq 1 100); do
  if [ -n "$(fingerprint pri.sock)" ] && [ "$(fingerprint pri.sock)" = "$(fingerprint fol.sock)" ]; then resynced=1; break; fi
  sleep 0.1
done
[ "$resynced" -eq 1 ] || { echo "FAIL: follower never re-synced after compaction" >&2; cat fol.log >&2; fails=$((fails+1)); }
"$GX" stats --server fol.sock | grep -q '^snapshot_resyncs [1-9]' || { echo "FAIL: snapshot re-sync not counted" >&2; fails=$((fails+1)); }

# --- failover: promote the follower onto a new fencing epoch; it flips
# --- to primary, accepts writes, and advertises the new timeline ---
"$GX" promote fol.sock >promote.txt
expect_exit "galatex promote" 0 $?
grep -q 'role primary' promote.txt || { echo "FAIL: promote did not report the primary role: $(cat promote.txt)" >&2; fails=$((fails+1)); }
grep -q 'epoch 2' promote.txt || { echo "FAIL: promote did not advance the epoch: $(cat promote.txt)" >&2; fails=$((fails+1)); }
"$GX" stats --server fol.sock --health | grep -q '^epoch 2$' || { echo "FAIL: promoted daemon health missing epoch 2" >&2; fails=$((fails+1)); }
"$GX" stats --server fol.sock --health | grep -q '^role primary$' || { echo "FAIL: promoted daemon still a replica" >&2; fails=$((fails+1)); }

"$GX" update --server fol.sock -a u1.xml >ack.txt
expect_exit "promoted daemon accepts updates" 0 $?
grep -q '^acknowledged 1 operation' ack.txt || { echo "FAIL: post-promotion update not acknowledged" >&2; fails=$((fails+1)); }

kill -TERM $FOL $PRI
wait $FOL $PRI 2>/dev/null

# --- workload replay + SLO gate: a tiny seeded scenario runs end to
# --- end, gates green against its own output, and the gate exits
# --- non-zero naming scenario + metric against a tightened baseline ---
timeout 30 "$GX" workload --scale 0.1 --seed 42 --scenario zipf-read-only --out wl.json >wl.log 2>&1
expect_exit "workload scaled run" 0 $?
grep -q '"name": "zipf-read-only"' wl.json || { echo "FAIL: workload run JSON missing the scenario" >&2; cat wl.log >&2; fails=$((fails+1)); }
grep -q '"p99_ms":' wl.json || { echo "FAIL: workload run JSON missing p99" >&2; fails=$((fails+1)); }

timeout 30 "$GX" workload --gate wl.json --against wl.json >gate.log
expect_exit "workload gate vs identical results" 0 $?
grep -q 'PASS' gate.log || { echo "FAIL: identical gate did not report PASS" >&2; fails=$((fails+1)); }

# tighten the baseline far below the slack floor: the fresh numbers must
# now violate the p99 SLO, and the failure must name scenario + metric
sed 's/"p99_ms": [0-9.]*/"p99_ms": 400.0/; s/"p95_ms": [0-9.]*/"p95_ms": 400.0/' wl.json > regressed.json
timeout 30 "$GX" workload --gate wl.json --against regressed.json 2>gate-err.txt
expect_exit "workload gate flags the regression" 1 $?
grep -q 'zipf-read-only' gate-err.txt || { echo "FAIL: gate violation does not name the scenario" >&2; cat gate-err.txt >&2; fails=$((fails+1)); }
grep -q 'p99_ms' gate-err.txt || { echo "FAIL: gate violation does not name the metric" >&2; cat gate-err.txt >&2; fails=$((fails+1)); }

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI smoke failure(s)" >&2
  exit 1
fi
echo "CLI smoke: all checks passed"
