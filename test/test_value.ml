(* The XDM value module: atomization, effective boolean value, comparisons,
   arithmetic, serialization. *)

open Xquery

let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let test_ebv () =
  check_bool "empty" false (Value.effective_boolean_value []);
  check_bool "false" false (Value.effective_boolean_value (Value.boolean false));
  check_bool "true" true (Value.effective_boolean_value (Value.boolean true));
  check_bool "zero" false (Value.effective_boolean_value (Value.integer 0));
  check_bool "nonzero" true (Value.effective_boolean_value (Value.integer 3));
  check_bool "empty string" false (Value.effective_boolean_value (Value.string ""));
  check_bool "string" true (Value.effective_boolean_value (Value.string "x"));
  check_bool "nan" false (Value.effective_boolean_value (Value.double nan));
  let node = Xmlkit.Parser.parse_document "<a/>" in
  check_bool "node-first sequence" true
    (Value.effective_boolean_value [ Value.Node node; Value.Integer 0 ]);
  match Value.effective_boolean_value [ Value.Integer 1; Value.Integer 2 ] with
  | exception Xquery.Errors.Error { code = Xquery.Errors.XPTY0004; _ } -> ()
  | _ -> Alcotest.fail "multi-atomic EBV must raise"

let test_atomization () =
  let doc = Xmlkit.Parser.parse_document "<a>hello <b>world</b></a>" in
  (match Value.atomize (Value.of_nodes [ doc ]) with
  | [ Value.String s ] -> check_string "node atomizes to string value" "hello world" s
  | _ -> Alcotest.fail "unexpected atomization");
  check_bool "atomics unchanged" true
    (Value.atomize (Value.integer 4) = Value.integer 4)

let test_item_to_string () =
  check_string "whole double" "3" (Value.item_to_string (Value.Double 3.0));
  check_string "fraction" "3.25" (Value.item_to_string (Value.Double 3.25));
  check_string "nan" "NaN" (Value.item_to_string (Value.Double nan));
  check_string "inf" "INF" (Value.item_to_string (Value.Double infinity));
  check_string "bool" "true" (Value.item_to_string (Value.Boolean true));
  check_string "int" "-7" (Value.item_to_string (Value.Integer (-7)))

let test_general_compare () =
  let num n = Value.Integer n in
  check_bool "existential" true
    (Value.general_compare Value.Eq [ num 1; num 2 ] [ num 2; num 9 ]);
  check_bool "none" false (Value.general_compare Value.Eq [ num 1 ] [ num 2 ]);
  check_bool "numeric string promotion" true
    (Value.general_compare Value.Lt [ Value.String "9" ] [ num 10 ]);
  check_bool "string compare" true
    (Value.general_compare Value.Gt [ Value.String "b" ] [ Value.String "a" ]);
  check_bool "empty never matches" false (Value.general_compare Value.Eq [] [ num 1 ])

let test_value_compare () =
  check_bool "eq" true (Value.value_compare Value.Eq (Value.integer 1) (Value.integer 1) = Some true);
  check_bool "empty gives none" true (Value.value_compare Value.Eq [] (Value.integer 1) = None);
  match Value.value_compare Value.Eq (Value.of_item (Value.Integer 1) @ Value.integer 2) (Value.integer 1) with
  | exception Xquery.Errors.Error { code = Xquery.Errors.XPTY0004; _ } -> ()
  | _ -> Alcotest.fail "non-singleton value comparison must raise"

let test_arith () =
  check_bool "int add" true (Value.arith Value.Add (Value.integer 2) (Value.integer 3) = Value.integer 5);
  check_bool "div always double" true
    (Value.arith Value.Div (Value.integer 5) (Value.integer 2) = Value.double 2.5);
  check_bool "empty propagates" true (Value.arith Value.Add [] (Value.integer 1) = []);
  (match Value.arith Value.Idiv (Value.integer 1) (Value.integer 0) with
  | exception Xquery.Errors.Error { code = Xquery.Errors.FOAR0001; _ } -> ()
  | _ -> Alcotest.fail "idiv by zero must raise FOAR0001");
  check_bool "string promotes" true
    (Value.arith Value.Mul (Value.string "4") (Value.integer 2) = Value.double 8.0)

let test_document_order_dedup () =
  let doc = Xmlkit.Parser.parse_document "<a><b/><c/></a>" in
  let a = List.hd (Xmlkit.Node.children doc) in
  let b = List.nth (Xmlkit.Node.children a) 0 in
  let c = List.nth (Xmlkit.Node.children a) 1 in
  let v = Value.of_nodes [ c; b; c; a ] in
  match Value.document_order_dedup v with
  | [ Value.Node x; Value.Node y; Value.Node z ] ->
      check_bool "order a b c" true
        (Xmlkit.Node.equal x a && Xmlkit.Node.equal y b && Xmlkit.Node.equal z c)
  | _ -> Alcotest.fail "expected three nodes"

let prop_compare_items_total =
  let gen_item =
    QCheck2.Gen.(
      oneof
        [
          map (fun i -> Value.Integer i) (int_range (-100) 100);
          map (fun f -> Value.Double f) (float_bound_inclusive 100.0);
          map (fun s -> Value.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
        ])
  in
  QCheck2.Test.make ~name:"compare_items antisymmetric" ~count:200
    QCheck2.Gen.(pair gen_item gen_item)
    (fun (a, b) ->
      let sgn x = compare x 0 in
      sgn (Value.compare_items a b) = -sgn (Value.compare_items b a))

let tests =
  [
    Alcotest.test_case "effective boolean value" `Quick test_ebv;
    Alcotest.test_case "atomization" `Quick test_atomization;
    Alcotest.test_case "item serialization" `Quick test_item_to_string;
    Alcotest.test_case "general comparison" `Quick test_general_compare;
    Alcotest.test_case "value comparison" `Quick test_value_compare;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "document order dedup" `Quick test_document_order_dedup;
    QCheck_alcotest.to_alcotest prop_compare_items_total;
  ]
