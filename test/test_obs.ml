(* Observability: the span recorder, the engine's counter semantics, and
   the Section 4 pipelined <= materialized property.  Every timing
   assertion runs under an injected Obs.Clock.manual — no wall-clock
   sleeps, no tolerance windows. *)

open Galatex

let engine = lazy (Corpus.Usecases.engine ())

let counters_of ?clock ?strategy ?optimizations src =
  let report =
    Engine.run_report (Lazy.force engine) ?clock ?strategy ?optimizations src
  in
  report.Engine.counters

(* --- manual clock ------------------------------------------------- *)

let test_manual_clock () =
  let c = Obs.Clock.manual ~start:10. ~step:2. () in
  List.iter
    (fun want -> Alcotest.(check (float 0.)) "tick" want (c ()))
    [ 10.; 12.; 14.; 16. ]

(* --- span trees ---------------------------------------------------- *)

(* A span tree is well-nested when every child's interval lies inside its
   parent's and closed children never outlast the parent. *)
let rec well_nested (s : Obs.Trace.span) =
  Obs.Trace.duration s >= 0.
  && List.for_all
       (fun (c : Obs.Trace.span) ->
         c.Obs.Trace.start >= s.Obs.Trace.start
         && c.Obs.Trace.finish <= s.Obs.Trace.finish
         && Obs.Trace.duration c <= Obs.Trace.duration s
         && well_nested c)
       s.Obs.Trace.children

let rec span_count (s : Obs.Trace.span) =
  1 + List.fold_left (fun acc c -> acc + span_count c) 0 s.Obs.Trace.children

(* random nesting scripts for the recorder *)
type shape = Shape of shape list

let rec shape_size (Shape children) =
  1 + List.fold_left (fun acc c -> acc + shape_size c) 0 children

let gen_shape =
  let open QCheck2.Gen in
  sized
    (fix (fun self n ->
         if n = 0 then pure (Shape [])
         else
           map
             (fun l -> Shape l)
             (list_size (int_range 0 3) (self (n / 2)))))

let rec record tr depth (Shape children) =
  Obs.Trace.with_span tr (Printf.sprintf "s%d" depth) (fun () ->
      List.iter (fun c -> record tr (depth + 1) c) children)

let prop_spans_well_nested =
  QCheck2.Test.make ~name:"recorded span trees are well-nested" ~count:100
    gen_shape (fun shape ->
      let tr = Obs.Trace.make ~clock:(Obs.Clock.manual ()) () in
      record tr 0 shape;
      match Obs.Trace.root tr with
      | None -> false
      | Some root ->
          (* with a step-1 manual clock each span consumes exactly two
             ticks, so a subtree of [k] spans spans [2k - 1] ticks *)
          let rec exact (s : Obs.Trace.span) =
            Obs.Trace.duration s = float_of_int ((2 * span_count s) - 1)
            && List.for_all exact s.Obs.Trace.children
          in
          well_nested root && span_count root = shape_size shape && exact root)

let test_span_exceptions () =
  let tr = Obs.Trace.make ~clock:(Obs.Clock.manual ()) () in
  (try
     Obs.Trace.with_span tr "outer" (fun () ->
         Obs.Trace.with_span tr "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  match Obs.Trace.root tr with
  | None -> Alcotest.fail "no root after exception"
  | Some root ->
      Alcotest.(check string) "root name" "outer" root.Obs.Trace.name;
      Alcotest.(check bool) "still well-nested" true (well_nested root);
      Alcotest.(check int) "both spans closed" 2 (span_count root)

(* --- engine trace shape -------------------------------------------- *)

let rec find_span name (s : Obs.Trace.span) =
  if s.Obs.Trace.name = name then Some s
  else List.find_map (find_span name) s.Obs.Trace.children

let test_engine_trace_shape () =
  let clock = Obs.Clock.manual () in
  let report =
    Engine.run_report (Lazy.force engine) ~clock
      {|count(collection()//book[. ftcontains "usability"])|}
  in
  let root = report.Engine.trace in
  Alcotest.(check string) "root is the query span" "query" root.Obs.Trace.name;
  Alcotest.(check bool) "well-nested" true (well_nested root);
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (phase ^ " span present") true
        (find_span phase root <> None))
    [ "parse"; "eval"; "ft_eval" ];
  Alcotest.(check bool)
    "no rewrite span without optimizations" true
    (find_span "rewrite" root = None);
  let json = Obs.Trace.to_json root in
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']');
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true (contains needle json))
    [ {|"name":"query"|}; {|"children":[|}; {|"duration":|} ]

let test_trace_uses_injected_clock () =
  let clock = Obs.Clock.manual ~start:100. ~step:1. () in
  let report =
    Engine.run_report (Lazy.force engine) ~clock
      {|count(collection()//book[. ftcontains "usability"])|}
  in
  let root = report.Engine.trace in
  Alcotest.(check (float 0.)) "root starts at the injected origin" 100.
    root.Obs.Trace.start;
  (* durations are whole tick counts under the step-1 manual clock *)
  Alcotest.(check bool) "integral duration" true
    (Float.is_integer (Obs.Trace.duration root) && Obs.Trace.duration root > 0.)

(* --- counters ------------------------------------------------------ *)

let all_non_negative c =
  List.for_all (fun (_, v) -> v >= 0) (Xquery.Limits.counters_to_list c)

let queries =
  [
    {|count(collection()//book[. ftcontains "usability" && "testing"])|};
    {|count(collection()//p[. ftcontains "usability" || "databases"])|};
    {|count(collection()//p[. ftcontains "usability" && "product" window 13 words])|};
    {|count(collection()//chapter[./title ftcontains "usability" && "assessment" ordered])|};
  ]

let test_counters_non_negative () =
  List.iter
    (fun src ->
      List.iter
        (fun strategy ->
          Alcotest.(check bool)
            (Printf.sprintf "non-negative counters: %s" src)
            true
            (all_non_negative (counters_of ~strategy src)))
        [ Engine.Native_materialized; Engine.Native_pipelined; Engine.Translated ])
    queries

(* A counter snapshot is per-run; the serving layer's aggregation across
   requests is plain addition into a Metrics registry.  Two identical
   requests must therefore read as exactly twice one request. *)
let test_counters_additive () =
  let m = Obs.Metrics.create () in
  let src = List.hd queries in
  let once = counters_of src in
  let accumulate c =
    List.iter (fun (k, v) -> Obs.Metrics.add m k v) (Xquery.Limits.counters_to_list c)
  in
  accumulate (counters_of src);
  accumulate (counters_of src);
  List.iter
    (fun (k, v) ->
      Alcotest.(check int) (k ^ " additive across requests") (2 * v)
        (Obs.Metrics.get m k))
    (Xquery.Limits.counters_to_list once)

let prop_metrics_additive =
  QCheck2.Test.make ~name:"metrics registry sums adds per name" ~count:100
    QCheck2.Gen.(
      small_list (pair (oneofl [ "a"; "b"; "c" ]) (int_range 0 1000)))
    (fun adds ->
      let m = Obs.Metrics.create () in
      List.iter (fun (k, v) -> Obs.Metrics.add m k v) adds;
      List.for_all
        (fun name ->
          Obs.Metrics.get m name
          = List.fold_left
              (fun acc (k, v) -> if k = name then acc + v else acc)
              0 adds)
        [ "a"; "b"; "c" ])

(* --- Section 4: pipelined <= materialized -------------------------- *)

let vocab =
  [ "usability"; "testing"; "software"; "databases"; "quality"; "product";
    "experts"; "users"; "relational"; "nosuchword" ]

let gen_selection =
  let open QCheck2.Gen in
  let leaf = map (Printf.sprintf "\"%s\"") (oneofl vocab) in
  let rec sel depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (2, map2 (Printf.sprintf "(%s && %s)") (sel (depth - 1)) (sel (depth - 1)));
          (2, map2 (Printf.sprintf "(%s || %s)") (sel (depth - 1)) (sel (depth - 1)));
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s window %d words)" a n)
              (sel (depth - 1)) (int_range 2 20) );
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s distance at most %d words)" a n)
              (sel (depth - 1)) (int_range 1 15) );
          (1, map (Printf.sprintf "(%s ordered)") (sel (depth - 1)));
        ]
  in
  sel 2

let gen_context = QCheck2.Gen.oneofl [ "//book"; "//p"; "//chapter"; "//title" ]

let prop_pipelined_materializes_no_more =
  QCheck2.Test.make
    ~name:"pipelined materializes no more than materialized (Section 4)"
    ~count:40
    QCheck2.Gen.(pair gen_context gen_selection)
    (fun (ctx, sel) ->
      let src = Printf.sprintf "count(collection()%s[. ftcontains %s])" ctx sel in
      let mat = counters_of ~strategy:Engine.Native_materialized src in
      let pipe = counters_of ~strategy:Engine.Native_pipelined src in
      pipe.Xquery.Limits.allmatches_materialized
      <= mat.Xquery.Limits.allmatches_materialized)

(* --- Figure 6(a): pushdown strictly reduces materialization --------- *)

(* The acceptance query: a window filter over an FTOr of selective FTAnds.
   Pushdown distributes the window below the union, so each disjunct is
   filtered before it is materialized into the union — strictly fewer
   AllMatches entries, observable in the run's own counters. *)
let pushdown_query =
  {|count(collection()//p[. ftcontains ("usability" && "testing" || "databases" && "relational") window 8 words])|}

let test_pushdown_strictly_decreases () =
  let clock () = Obs.Clock.manual () in
  let plain =
    Engine.run_report (Lazy.force engine) ~clock:(clock ())
      ~strategy:Engine.Native_materialized pushdown_query
  in
  let optimized =
    Engine.run_report (Lazy.force engine) ~clock:(clock ())
      ~strategy:Engine.Native_materialized
      ~optimizations:{ Engine.pushdown = true; or_short_circuit = false }
      pushdown_query
  in
  Alcotest.(check string) "same answer"
    (Xquery.Value.to_display_string plain.Engine.value)
    (Xquery.Value.to_display_string optimized.Engine.value);
  Alcotest.(check int) "no rewrite fired without optimizations" 0
    plain.Engine.counters.Xquery.Limits.pushdown_fired;
  Alcotest.(check bool) "pushdown fired" true
    (optimized.Engine.counters.Xquery.Limits.pushdown_fired >= 1);
  Alcotest.(check bool) "rewrite span recorded" true
    (find_span "rewrite" optimized.Engine.trace <> None);
  let m = plain.Engine.counters.Xquery.Limits.allmatches_materialized in
  let o = optimized.Engine.counters.Xquery.Limits.allmatches_materialized in
  if not (o < m) then
    Alcotest.failf "pushdown did not reduce materialization: %d -> %d" m o

(* --- histograms and the ring --------------------------------------- *)

let prop_histogram_cumulative =
  QCheck2.Test.make ~name:"histogram cumulative buckets are monotone"
    ~count:100
    QCheck2.Gen.(small_list (float_bound_inclusive 20.))
    (fun values ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) values;
      let cum = Obs.Histogram.cumulative h in
      let counts = List.map snd cum in
      Obs.Histogram.count h = List.length values
      && List.for_all2 ( <= ) counts (List.tl counts @ [ max_int ])
      && (match List.rev cum with
         | (le, total) :: _ -> le = infinity && total = List.length values
         | [] -> false))

let prop_ring_newest_first =
  QCheck2.Test.make ~name:"ring keeps the newest [capacity] entries"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 8) (small_list int))
    (fun (capacity, xs) ->
      let r = Obs.Ring.create ~capacity in
      List.iter (Obs.Ring.add r) xs;
      let want =
        let rec take n = function
          | x :: tl when n > 0 -> x :: take (n - 1) tl
          | _ -> []
        in
        take capacity (List.rev xs)
      in
      Obs.Ring.entries r = want)

let tests =
  [
    Alcotest.test_case "manual clock is deterministic" `Quick test_manual_clock;
    QCheck_alcotest.to_alcotest prop_spans_well_nested;
    Alcotest.test_case "spans close on exceptions" `Quick test_span_exceptions;
    Alcotest.test_case "engine trace has the documented shape" `Quick
      test_engine_trace_shape;
    Alcotest.test_case "trace honours the injected clock" `Quick
      test_trace_uses_injected_clock;
    Alcotest.test_case "run counters are non-negative" `Quick
      test_counters_non_negative;
    Alcotest.test_case "counters are additive across requests" `Quick
      test_counters_additive;
    QCheck_alcotest.to_alcotest prop_metrics_additive;
    QCheck_alcotest.to_alcotest prop_pipelined_materializes_no_more;
    Alcotest.test_case "pushdown strictly reduces materialization" `Quick
      test_pushdown_strictly_decreases;
    QCheck_alcotest.to_alcotest prop_histogram_cumulative;
    QCheck_alcotest.to_alcotest prop_ring_newest_first;
  ]
