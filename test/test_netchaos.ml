(* The network-chaos contract, swept with seeded faultnet schedules on
   every link type of the serving stack:

   1. client <-> daemon: under a seeded mix of stalls, drops, throttles
      and latency, every request completes — a value, a structured
      failure, or a transport error — within deadline + grace, never a
      hang; the daemon itself stays healthy throughout (a direct query
      still answers in full, no worker is wedged);
   2. router <-> shard: a shard behind a blackholed link costs its
      partition (GTLX0011 partial naming it), its endpoint breaker
      trips — and when the link heals, a half-open probe recovers the
      breaker and queries return to full answers;
   3. client <-> router: the same seeded sweep through a proxy in front
      of the router holds the same bound, and the router survives it;
   4. follower <-> primary: a stalled replication link turns sync steps
      into bounded [sync_failures] (never a hang — each pull is cut by
      the --follow-timeout-derived deadline, the primary sheds the
      stalled connections instead of wedging its workers), the follower
      keeps serving its last generation meanwhile, and when the link
      heals it converges: every acknowledged write appears, lag returns
      to zero. *)

open Galatex_server
module Router = Galatex_cluster.Router

(* --- scratch dirs / sockets (same conventions as test_server.ml) --- *)

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_name "nch-scratch" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let rec poll ?(tries = 250) msg f =
  if f () then ()
  else if tries = 0 then Alcotest.failf "timeout waiting for %s" msg
  else begin
    Thread.delay 0.02;
    poll ~tries:(tries - 1) msg f
  end

let gettime = Unix.gettimeofday

(* --- fixtures --- *)

let corpus =
  List.init 4 (fun i ->
      ( Printf.sprintf "doc%d.xml" i,
        Printf.sprintf
          "<book><title>Book %d</title><p>the usability of web site number \
           %d</p></book>"
          i i ))

let save_corpus ~dir sources =
  Ftindex.Store.save ~dir (Ftindex.Indexer.index_strings sources)

let add_doc i =
  Ftindex.Wal.Add_doc
    {
      uri = Printf.sprintf "new%d.xml" i;
      source =
        Printf.sprintf
          "<book><title>Update %d</title><p>usability update number \
           %d</p></book>"
          i i;
    }

let count_query = "count(collection()//book)"

let limits_of seconds =
  { Xquery.Limits.defaults with Xquery.Limits.timeout = Some seconds }

let count_request seconds =
  Protocol.Query (Protocol.query_request ~limits:(limits_of seconds) count_query)

let value_of what = function
  | Ok (Protocol.Value v) -> v
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "%s: unexpected failure %s: %s" what e.Protocol.code
        e.Protocol.message
  | Ok _ -> Alcotest.failf "%s: unexpected reply kind" what
  | Error reason -> Alcotest.failf "%s: transport error %s" what reason

let stat_of stats key =
  match List.assoc_opt key stats.Protocol.counters with
  | Some v -> v
  | None -> Alcotest.failf "stats counter %s missing" key

(* the sweep oracle: any single outcome is legal (the faults make
   requests fail), but it must arrive within deadline + grace and a
   transport failure must be a structured reason, not an exception *)
let swept_request ~bound ~socket_path req =
  let t0 = gettime () in
  let outcome =
    match Client.request ~recv_timeout:0.6 ~socket_path req with
    | Ok _ -> "reply"
    | Error _ -> "transport error"
    | exception e -> Alcotest.failf "sweep: escaped exception %s"
                       (Printexc.to_string e)
  in
  let dt = gettime () -. t0 in
  if dt > bound then
    Alcotest.failf "sweep: %s took %.2fs (bound %.2fs)" outcome dt bound

let seeded ~seed =
  Faultnet.seeded_plans ~seed ~p_stall:0.25 ~p_drop:0.15 ~p_throttle:0.2
    ~latency:0.002 ~jitter:0.005 ~rate:16384 ()

(* -------------------------------------------------------------------- *)
(* 1. client <-> daemon                                                  *)

let test_daemon_sweep () =
  with_dir (fun dir ->
      save_corpus ~dir corpus;
      let sock = fresh_name "nd" ^ ".sock" in
      let cfg =
        {
          (Server.default_config ~index_dir:dir ~socket_path:sock) with
          Server.workers = 2;
          tick_interval = 0.02;
          recv_timeout = 0.5;
          idle_timeout = 0.3;
        }
      in
      let t = Server.start cfg in
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () ->
          let proxy_sock = fresh_name "ndp" ^ ".sock" in
          let proxy =
            Faultnet.start ~listen:proxy_sock ~target:sock
              ~plan_for:(seeded ~seed:11)
          in
          Fun.protect
            ~finally:(fun () -> Faultnet.stop proxy)
            (fun () ->
              for _ = 1 to 14 do
                swept_request ~bound:2.5 ~socket_path:proxy_sock
                  (count_request 0.4)
              done);
          (* the daemon outlived the weather: direct query, full answer *)
          let v =
            value_of "direct after sweep"
              (Client.request ~recv_timeout:5.0 ~socket_path:sock
                 (count_request 3.0))
          in
          Alcotest.(check (list string)) "count intact" [ "4" ] v.Protocol.items))

(* -------------------------------------------------------------------- *)
(* 2 & 3. router <-> shard breaker cycle, client <-> router sweep        *)

type link_mode = Black | Pass

let test_router_breaker_cycle () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      (* two shards, each with half the corpus *)
      let parts = Corpus.Partition.split ~shards:2 corpus in
      let shard_socks = Array.init 2 (fun i -> fresh_name
                                         (Printf.sprintf "ns%d" i) ^ ".sock")
      in
      let servers =
        Array.mapi
          (fun i part ->
            let sdir = Filename.concat dir (Printf.sprintf "shard-%d" i) in
            save_corpus ~dir:sdir part;
            Server.start
              {
                (Server.default_config ~index_dir:sdir
                   ~socket_path:shard_socks.(i))
                with
                Server.workers = 2;
                tick_interval = 0.02;
                recv_timeout = 0.5;
                idle_timeout = 0.3;
              })
          parts
      in
      Fun.protect
        ~finally:(fun () -> Array.iter Server.stop servers)
        (fun () ->
          (* shard 0 sits behind a mode-switched proxy *)
          let mode = Atomic.make Black in
          let plan _ =
            match Atomic.get mode with
            | Black ->
                let hole = { Faultnet.clean with Faultnet.blackhole = true } in
                (hole, hole)
            | Pass -> (Faultnet.clean, Faultnet.clean)
          in
          let proxy0 = fresh_name "nsp0" ^ ".sock" in
          let fnet =
            Faultnet.start ~listen:proxy0 ~target:shard_socks.(0)
              ~plan_for:plan
          in
          let router_sock = fresh_name "nrt" ^ ".sock" in
          let cfg =
            {
              (Router.default_config
                 ~shards:
                   [
                     { Router.primary = proxy0; replicas = [] };
                     { Router.primary = shard_socks.(1); replicas = [] };
                   ]
                 ~socket_path:router_sock)
              with
              Router.workers = 2;
              retries = 0;
              breaker_threshold = 2;
              breaker_cooldown = 2;
              default_deadline = 0.6;
              recv_timeout = 1.0;
              idle_timeout = 0.4;
              probe_timeout = 0.3;
              tick_interval = 0.02;
            }
          in
          let router = Router.start cfg in
          Fun.protect
            ~finally:(fun () ->
              Router.stop router;
              Faultnet.stop fnet)
            (fun () ->
              (* phase A: shard 0's link is a blackhole — queries still
                 answer, partial, naming partition 0, within bound *)
              let partials = ref 0 in
              for _ = 1 to 3 do
                let t0 = gettime () in
                (match
                   Client.request ~recv_timeout:3.0 ~socket_path:router_sock
                     (count_request 0.6)
                 with
                | Ok (Protocol.Value v) -> (
                    match v.Protocol.partial with
                    | Some p ->
                        incr partials;
                        Alcotest.(check (list int))
                          "partition 0 missing" [ 0 ] p.Protocol.missing
                    | None -> Alcotest.fail "full answer through a blackhole")
                | Ok (Protocol.Failure e) ->
                    Alcotest.failf "unexpected failure %s" e.Protocol.code
                | Ok _ -> Alcotest.fail "unexpected reply kind"
                | Error reason -> Alcotest.failf "transport: %s" reason);
                let dt = gettime () -. t0 in
                if dt > 3.0 then
                  Alcotest.failf "partial took %.2fs (bound 3.0)" dt
              done;
              Alcotest.(check int) "every query partial" 3 !partials;
              (* the stalled endpoint's breaker tripped, visibly *)
              poll "breaker open for the blackholed endpoint" (fun () ->
                  List.exists
                    (fun b ->
                      b.Protocol.b_strategy = proxy0
                      && b.Protocol.b_state <> "closed")
                    (Router.stats router).Protocol.breakers);
              (* phase B: the link heals; a half-open probe must recover
                 the breaker and answers return to full *)
              Atomic.set mode Pass;
              poll ~tries:400 "full answers after the link heals" (fun () ->
                  match
                    Client.request ~recv_timeout:3.0 ~socket_path:router_sock
                      (count_request 0.6)
                  with
                  | Ok (Protocol.Value v) ->
                      v.Protocol.partial = None
                      && v.Protocol.items = [ "4" ]
                  | _ -> false);
              (* phase C: seeded weather on the client <-> router link *)
              let cproxy = fresh_name "nrp" ^ ".sock" in
              let cfnet =
                Faultnet.start ~listen:cproxy ~target:router_sock
                  ~plan_for:(seeded ~seed:23)
              in
              Fun.protect
                ~finally:(fun () -> Faultnet.stop cfnet)
                (fun () ->
                  for _ = 1 to 8 do
                    swept_request ~bound:2.5 ~socket_path:cproxy
                      (count_request 0.4)
                  done);
              (* the router outlived the weather *)
              let v =
                value_of "direct after sweep"
                  (Client.request ~recv_timeout:5.0 ~socket_path:router_sock
                     (count_request 3.0))
              in
              Alcotest.(check (list string))
                "count intact" [ "4" ] v.Protocol.items)))

(* -------------------------------------------------------------------- *)
(* 4. follower <-> primary                                               *)

let test_follower_link_stall () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let pdir = Filename.concat dir "primary" in
      let fdir = Filename.concat dir "follower" in
      save_corpus ~dir:pdir corpus;
      let psock = fresh_name "npp" ^ ".sock" in
      let fsock = fresh_name "npf" ^ ".sock" in
      (* tight I/O bounds on the primary: stalled replication
         connections must be shed, not wedge its workers *)
      let primary =
        Server.start
          {
            (Server.default_config ~index_dir:pdir ~socket_path:psock) with
            Server.workers = 2;
            tick_interval = 0.02;
            recv_timeout = 0.5;
            idle_timeout = 0.3;
          }
      in
      Fun.protect
        ~finally:(fun () -> Server.stop primary)
        (fun () ->
          let mode = Atomic.make Pass in
          let plan _ =
            match Atomic.get mode with
            | Pass -> (Faultnet.clean, Faultnet.clean)
            | Black -> (Faultnet.stalled (), Faultnet.clean)
          in
          let proxy = fresh_name "npx" ^ ".sock" in
          let fnet = Faultnet.start ~listen:proxy ~target:psock ~plan_for:plan in
          let follower =
            Server.start
              {
                (Server.default_config ~index_dir:fdir ~socket_path:fsock) with
                Server.workers = 2;
                tick_interval = 0.02;
                follow = Some proxy;
                follow_timeout = 0.4;
              }
          in
          Fun.protect
            ~finally:(fun () ->
              Server.stop follower;
              Faultnet.stop fnet)
            (fun () ->
              let fcount () =
                match
                  Client.request ~recv_timeout:3.0 ~socket_path:fsock
                    (count_request 1.0)
                with
                | Ok (Protocol.Value v) -> v.Protocol.items
                | _ -> []
              in
              let fstat key =
                match Client.stats ~recv_timeout:3.0 ~socket_path:fsock () with
                | Ok s -> stat_of s key
                | Error reason -> Alcotest.failf "follower stats: %s" reason
              in
              let update ops =
                match
                  Client.request ~recv_timeout:3.0 ~socket_path:psock
                    (Protocol.Update { ops; epoch = 0 })
                with
                | Ok (Protocol.Update_reply u) -> u.Protocol.u_last_seq
                | Ok _ -> Alcotest.fail "update: unexpected reply"
                | Error reason -> Alcotest.failf "update: %s" reason
              in
              (* clean link: bootstrap, then live catch-up *)
              poll ~tries:500 "bootstrap" (fun () -> fcount () = [ "4" ]);
              let acked = update [ add_doc 1; add_doc 2; add_doc 3 ] in
              Alcotest.(check int) "primary acked" 3 acked;
              poll ~tries:500 "catch-up" (fun () -> fcount () = [ "7" ]);
              poll "lag drained" (fun () -> fstat "follow_lag" = 0);
              (* the link stalls mid-stream: sync steps fail in bounded
                 time (no hang), the follower keeps serving gen N — a
                 swallowed probe counts primary_unreachable_ticks, a cut
                 mid-pull counts sync_failures; either proves the
                 deadline fired instead of a wedge *)
              Atomic.set mode Black;
              let sync_fails () =
                fstat "sync_failures" + fstat "primary_unreachable_ticks"
              in
              let failures0 = sync_fails () in
              let acked = update [ add_doc 4; add_doc 5 ] in
              Alcotest.(check int) "acked behind the stall" 5 acked;
              poll ~tries:500 "bounded sync failures" (fun () ->
                  sync_fails () > failures0);
              Alcotest.(check (list string))
                "follower still serves its generation" [ "7" ] (fcount ());
              (* heal: every acknowledged write appears, lag drains *)
              Atomic.set mode Pass;
              poll ~tries:500 "acked writes survive the stall" (fun () ->
                  fcount () = [ "9" ]);
              poll "staleness bounded" (fun () -> fstat "follow_lag" = 0))))

let tests =
  [
    Alcotest.test_case "seeded sweep: client <-> daemon" `Quick
      test_daemon_sweep;
    Alcotest.test_case "breaker trips and recovers: router <-> shard" `Quick
      test_router_breaker_cycle;
    Alcotest.test_case "stalled replication link: follower <-> primary" `Quick
      test_follower_link_stall;
  ]
