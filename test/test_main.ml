let () =
  Alcotest.run "galatex"
    [
      ("dewey", Test_dewey.tests);
      ("xml", Test_xml.tests);
      ("tokenize", Test_tokenize.tests);
      ("regex", Test_regex.tests);
      ("index", Test_index.tests);
      ("lexer", Test_lexer.tests);
      ("xquery", Test_xquery.tests);
      ("value", Test_value.tests);
      ("ft-parser", Test_ft_parser.tests);
      ("all-matches", Test_all_matches.tests);
      ("match-options", Test_match_options.tests);
      ("scoring", Test_scoring.tests);
      ("translate", Test_translate.tests);
      ("strategies", Test_strategies.tests);
      ("rewrite", Test_rewrite.tests);
      ("topk", Test_topk.tests);
      ("highlight", Test_highlight.tests);
      ("usecases", Test_usecases.tests);
      ("extensions", Test_extensions.tests);
      ("ft-stream", Test_ft_stream.tests);
      ("fts-module", Test_fts_module.tests);
      ("corpus", Test_corpus.tests);
      ("engine", Test_engine.tests);
      ("errors", Test_errors.tests);
      ("faults", Test_faults.tests);
      ("store", Test_store.tests);
      ("wal", Test_wal.tests);
      ("obs", Test_obs.tests);
      ("netio", Test_netio.tests);
      ("server", Test_server.tests);
      ("cluster", Test_cluster.tests);
      ("replication", Test_replication.tests);
      ("netchaos", Test_netchaos.tests);
      ("conformance", Test_conformance.tests);
    ]
