(* The cluster serving contract:

   1. merging is exact: concat preserves cluster document order (shard
      index major, in-shard order minor), counts sum, top-k merges by
      score upper bound — pre-sorting any shard list that arrives out of
      order, breaking ties in shard order;
   2. a shard that is down past retries costs its partition, not the
      query: the merged answer carries partial framing (GTLX0011) naming
      the missing partitions; with every partition down the query fails
      with GTLX0011; a static/dynamic/type error from a healthy shard is
      the query's own failure and propagates as-is;
   3. replica failover: a shard with a live replica keeps answering in
      full when its primary dies;
   4. updates route by document hash to the owning shard's primary only
      (single-writer per partition);
   5. rolling reload over the wire reloads every shard and reports the
      merged health;
   6. chaos: under random shard kills/restarts, torn client frames and a
      concurrent query+update stream, every client gets a full answer, a
      GTLX0011-tagged partial naming the missing partitions, or a
      structured shed — never a hang, a protocol desync, or a transport
      error from the router itself.

   Everything runs in-process: Server.start per shard, Router.start for
   the router, Server.stop/start as the kill/restart hammer. *)

open Galatex_server
module Router = Galatex_cluster.Router
module Merge = Galatex_cluster.Merge

(* --- scratch dirs / sockets (same conventions as test_server.ml) --- *)

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_name "clu-scratch" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let rec poll ?(tries = 250) msg f =
  if f () then ()
  else if tries = 0 then Alcotest.failf "timeout waiting for %s" msg
  else begin
    Thread.delay 0.02;
    poll ~tries:(tries - 1) msg f
  end

(* --- fixtures: 8 books cut into 2 partitions by uri hash --- *)

let sources =
  List.init 8 (fun i ->
      ( Printf.sprintf "doc%d.xml" i,
        Printf.sprintf
          "<book><title>Book %d</title><p>the usability of web site number \
           %d</p></book>"
          i i ))

let n_docs = List.length sources
let shard_count = 2
let parts = Corpus.Partition.split ~shards:shard_count sources

(* titles in cluster document order: shard 0's documents in order, then
   shard 1's — the ground truth for the concat tests *)
let expected_titles =
  List.concat_map
    (fun part ->
      List.map
        (fun (uri, _) ->
          Scanf.sscanf uri "doc%d.xml" (fun i ->
              Printf.sprintf "<title>Book %d</title>" i))
        part)
    (Array.to_list parts)

let count_query = "count(collection()//book)"
let titles_query = "collection()//book/title"

let short_limits : Xquery.Limits.t =
  { Xquery.Limits.defaults with Xquery.Limits.timeout = Some 3.0 }

(* --- an in-process cluster: one Server.t per shard + the router --- *)

type cluster = {
  router_sock : string;
  shard_socks : string array;
  shard_dirs : string array;
  servers : Server.t option ref array;  (** [None] while killed *)
  router : Router.t;
}

let shard_config ~dir ~sock =
  {
    (Server.default_config ~index_dir:dir ~socket_path:sock) with
    Server.workers = 2;
    tick_interval = 0.02;
  }

let start_shard c i =
  c.servers.(i) :=
    Some (Server.start (shard_config ~dir:c.shard_dirs.(i) ~sock:c.shard_socks.(i)))

let kill_shard c i =
  match !(c.servers.(i)) with
  | Some t ->
      c.servers.(i) := None;
      Server.stop t
  | None -> ()

let with_cluster ?(replicas = false) ?(tweak = fun (c : Router.config) -> c) ()
    f =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let shard_dirs =
        Array.mapi
          (fun i part ->
            let sdir = Filename.concat dir (Printf.sprintf "shard-%d" i) in
            Ftindex.Store.save ~dir:sdir (Ftindex.Indexer.index_strings part);
            sdir)
          parts
      in
      let shard_socks =
        Array.init shard_count (fun i ->
            fresh_name (Printf.sprintf "cs%d" i) ^ ".sock")
      in
      let servers =
        Array.init shard_count (fun i ->
            ref
              (Some
                 (Server.start
                    (shard_config ~dir:shard_dirs.(i) ~sock:shard_socks.(i)))))
      in
      (* a replica is a second read-only daemon over the same snapshot
         directory; the router only ever writes to primaries *)
      let replica_servers = ref [] in
      let replica_socks =
        if not replicas then Array.make shard_count None
        else
          Array.init shard_count (fun i ->
              let sock = fresh_name (Printf.sprintf "cr%d" i) ^ ".sock" in
              replica_servers :=
                Server.start (shard_config ~dir:shard_dirs.(i) ~sock)
                :: !replica_servers;
              Some sock)
      in
      let endpoints =
        Array.to_list
          (Array.mapi
             (fun i sock ->
               {
                 Router.primary = sock;
                 replicas = Option.to_list replica_socks.(i);
               })
             shard_socks)
      in
      let router_sock = fresh_name "crt" ^ ".sock" in
      let cfg =
        tweak
          {
            (Router.default_config ~shards:endpoints ~socket_path:router_sock) with
            Router.workers = 4;
            retries = 1;
            default_deadline = 3.0;
            tick_interval = 0.02;
            probe_timeout = 1.0;
            reload_timeout = 10.0;
          }
      in
      let router = Router.start cfg in
      let c = { router_sock; shard_socks; shard_dirs; servers; router } in
      Fun.protect
        ~finally:(fun () ->
          Router.stop router;
          Array.iteri (fun i _ -> kill_shard c i) c.servers;
          List.iter Server.stop !replica_servers)
        (fun () -> f c))

let ok_value what = function
  | Ok (Protocol.Value v) -> v
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "%s: unexpected failure %s: %s" what e.Protocol.code
        e.Protocol.message
  | Ok _ -> Alcotest.failf "%s: unexpected reply kind" what
  | Error reason -> Alcotest.failf "%s: transport error %s" what reason

let query ?merge c text =
  Client.request ~socket_path:c.router_sock
    (Protocol.Query (Protocol.query_request ~limits:short_limits ?merge text))

(* ------------------------------------------------------------------ *)
(* Merge unit tests (no daemons).                                      *)

let test_merge_classify () =
  let is_sum q = Merge.classify q = Protocol.Merge_sum in
  Alcotest.(check bool) "count sums" true (is_sum "count(collection()//book)");
  Alcotest.(check bool) "sum sums" true (is_sum "sum(//price)");
  Alcotest.(check bool) "path concats" false (is_sum "//book/title");
  Alcotest.(check bool) "garbage concats" false (is_sum "((@!")

let test_merge_scores () =
  Alcotest.(check (option (float 1e-9)))
    "attribute" (Some 0.5)
    (Merge.score_of_item {|<result score="0.5"><p>x</p></result>|});
  Alcotest.(check (option (float 1e-9)))
    "leading float" (Some 0.25)
    (Merge.score_of_item "0.25 some text");
  Alcotest.(check (option (float 1e-9)))
    "no score" None
    (Merge.score_of_item "<title>plain</title>")

let test_merge_topk () =
  let s0 = (0, [ "0.9 a"; "0.5 b"; "0.1 c" ]) in
  let s1 = (1, [ "0.8 d"; "0.7 e" ]) in
  Alcotest.(check (list string))
    "k-way order"
    [ "0.9 a"; "0.8 d"; "0.7 e"; "0.5 b" ]
    (Merge.top_k ~k:4 [ s0; s1 ]);
  Alcotest.(check (list string))
    "k bounds" [ "0.9 a"; "0.8 d" ]
    (Merge.top_k ~k:2 [ s1; s0 ]);
  (* an out-of-order shard list is pre-sorted before the merge *)
  Alcotest.(check (list string))
    "pre-sorts" [ "0.9 y"; "0.8 d"; "0.7 e"; "0.2 x" ]
    (Merge.top_k ~k:4 [ (0, [ "0.2 x"; "0.9 y" ]); s1 ]);
  (* ties resolve in shard order; unscored items rank below scored ones *)
  Alcotest.(check (list string))
    "ties and unscored"
    [ "0.5 first"; "0.5 second"; "<plain/>" ]
    (Merge.top_k ~k:3
       [ (1, [ "0.5 second" ]); (0, [ "0.5 first"; "<plain/>" ]) ])

let test_merge_sum () =
  Alcotest.(check (list string))
    "sums" [ "5" ]
    (Merge.items Protocol.Merge_sum [ (1, [ "3" ]); (0, [ "2" ]) ]);
  Alcotest.(check (list string))
    "fractional" [ "2.5" ]
    (Merge.items Protocol.Merge_sum [ (0, [ "1.25" ]); (1, [ "1.25" ]) ]);
  (* a non-numeric answer means the classification was wrong: degrade to
     concatenation instead of inventing numbers *)
  Alcotest.(check (list string))
    "degrades to concat" [ "<a/>"; "3" ]
    (Merge.items Protocol.Merge_sum [ (0, [ "<a/>" ]); (1, [ "3" ]) ])

(* ------------------------------------------------------------------ *)
(* Scatter-gather basics.                                              *)

let test_concat_document_order () =
  with_cluster () (fun c ->
      let v = ok_value "titles" (query c titles_query) in
      Alcotest.(check (list string)) "cluster document order" expected_titles
        v.Protocol.items;
      Alcotest.(check bool) "complete" true (v.Protocol.partial = None))

let test_count_sums_across_shards () =
  with_cluster () (fun c ->
      let v = ok_value "count" (query c count_query) in
      Alcotest.(check (list string))
        "summed" [ string_of_int n_docs ] v.Protocol.items)

let test_topk_over_wire () =
  with_cluster () (fun c ->
      (* each shard answers its own document count — a single numeric item,
         which the top-k merge scores as a leading float *)
      let sizes =
        List.sort (fun a b -> compare b a)
          (List.map List.length (Array.to_list parts))
      in
      let v =
        ok_value "topk"
          (query ~merge:(Protocol.Merge_topk 2) c count_query)
      in
      Alcotest.(check (list string))
        "descending shard counts"
        (List.map string_of_int sizes)
        v.Protocol.items)

let test_authoritative_error_propagates () =
  with_cluster () (fun c ->
      match query c "((@!" with
      | Ok (Protocol.Failure e) ->
          Alcotest.(check string) "syntax error" "err:XPST0003" e.Protocol.code
      | Ok _ -> Alcotest.fail "expected the shards' syntax error"
      | Error reason -> Alcotest.failf "transport error %s" reason)

(* ------------------------------------------------------------------ *)
(* Degradation: shard down -> partial; all down -> GTLX0011.           *)

let test_partial_when_shard_down () =
  with_cluster () (fun c ->
      kill_shard c 1;
      let v = ok_value "degraded" (query c titles_query) in
      (match v.Protocol.partial with
      | Some p ->
          Alcotest.(check (list int)) "names the partition" [ 1 ]
            p.Protocol.missing;
          Alcotest.(check bool) "carries a reason" true
            (String.length p.Protocol.detail > 0)
      | None -> Alcotest.fail "expected a partial result");
      (* only partition 0's documents answered, still in order *)
      let expected_part0 =
        List.filteri (fun i _ -> i < List.length parts.(0)) expected_titles
      in
      Alcotest.(check (list string))
        "surviving partition in order" expected_part0 v.Protocol.items;
      (* restart: full answers return *)
      start_shard c 1;
      poll "full answers after restart" (fun () ->
          match query c titles_query with
          | Ok (Protocol.Value v) -> v.Protocol.partial = None
          | _ -> false))

let test_all_down_fails_gtlx0011 () =
  with_cluster () (fun c ->
      kill_shard c 0;
      kill_shard c 1;
      match query c count_query with
      | Ok (Protocol.Failure e) ->
          Alcotest.(check string) "GTLX0011" "gtlx:GTLX0011" e.Protocol.code;
          Alcotest.(check string) "resource class" "resource"
            e.Protocol.error_class
      | Ok _ -> Alcotest.fail "expected a structured failure"
      | Error reason -> Alcotest.failf "transport error %s" reason)

let test_replica_failover () =
  with_cluster ~replicas:true () (fun c ->
      kill_shard c 0;
      (* the replica keeps partition 0 answering: no partial framing *)
      let v = ok_value "failover" (query c count_query) in
      Alcotest.(check bool) "complete" true (v.Protocol.partial = None);
      Alcotest.(check (list string))
        "full count" [ string_of_int n_docs ] v.Protocol.items)

(* ------------------------------------------------------------------ *)
(* Bounded-staleness failover: the router tracks each shard's freshest
   known (generation, seq) from update acks, query replies and probes;
   --max-lag gates how far behind a failover replica may serve from.    *)

(* an uri owned by the given partition, for steering updates *)
let uri_owned_by shard =
  let rec go i =
    let uri = Printf.sprintf "steer%d.xml" i in
    if Corpus.Partition.shard_of_uri ~shards:shard_count uri = shard then uri
    else go (i + 1)
  in
  go 0

let steer_op shard =
  Ftindex.Wal.Add_doc
    {
      uri = uri_owned_by shard;
      source = "<book><title>Steered</title><p>usability steering</p></book>";
    }

let send_update c ops =
  match Client.request ~socket_path:c.router_sock
      (Protocol.Update { ops; epoch = 0 })
  with
  | Ok (Protocol.Update_reply _) -> ()
  | Ok (Protocol.Failure e) ->
      Alcotest.failf "update failed: %s: %s" e.Protocol.code e.Protocol.message
  | Ok _ -> Alcotest.fail "unexpected reply to update"
  | Error reason -> Alcotest.failf "update transport error %s" reason

let router_stat c key =
  match List.assoc_opt key (Router.stats c.router).Protocol.counters with
  | Some v -> v
  | None -> Alcotest.failf "router counter %s missing" key

let test_stale_replicas_fail_gtlx0012 () =
  with_cluster ~replicas:true
    ~tweak:(fun cfg -> { cfg with Router.max_lag = Some 0 })
    ()
    (fun c ->
      (* advance both primaries past their replicas (the replicas are
         separate daemons over the same snapshot and never see the WAL
         append); the update acks teach the router the fresh positions *)
      send_update c [ steer_op 0; steer_op 1 ];
      (* primaries are at the latest position: queries still flow *)
      ignore (ok_value "fresh" (query c count_query));
      kill_shard c 0;
      kill_shard c 1;
      (* only stale replicas remain: the freshness bound fails the query
         with the dedicated code, not the outage code *)
      (match query c count_query with
      | Ok (Protocol.Failure e) ->
          Alcotest.(check string) "stale code" "gtlx:GTLX0012" e.Protocol.code;
          Alcotest.(check string)
            "resource class" "resource" e.Protocol.error_class
      | Ok _ -> Alcotest.fail "query served beyond --max-lag"
      | Error reason -> Alcotest.failf "transport error %s" reason);
      Alcotest.(check bool) "stale skips counted" true
        (router_stat c "stale_skips" > 0))

let test_stale_replica_served_when_unbounded () =
  with_cluster ~replicas:true () (fun c ->
      send_update c [ steer_op 0 ];
      kill_shard c 0;
      (* no bound set: the lagging replica serves — complete answer,
         logged and counted rather than refused *)
      let v = ok_value "unbounded failover" (query c count_query) in
      Alcotest.(check bool) "complete" true (v.Protocol.partial = None);
      Alcotest.(check (list string))
        "replica's pre-update count"
        [ string_of_int n_docs ]
        v.Protocol.items;
      Alcotest.(check bool) "stale serves counted" true
        (router_stat c "stale_served" > 0))

let test_replica_within_bound_serves () =
  with_cluster ~replicas:true
    ~tweak:(fun cfg -> { cfg with Router.max_lag = Some 5 })
    ()
    (fun c ->
      send_update c [ steer_op 0 ];
      kill_shard c 0;
      (* one record behind, bound is five: the replica is fresh enough *)
      let v = ok_value "within bound" (query c count_query) in
      Alcotest.(check bool) "complete" true (v.Protocol.partial = None);
      Alcotest.(check int) "no stale skips" 0 (router_stat c "stale_skips"))

let test_health_reports_endpoints () =
  with_cluster ~replicas:true () (fun c ->
      kill_shard c 1;
      match Client.health ~socket_path:c.router_sock () with
      | Error reason -> Alcotest.failf "health: %s" reason
      | Ok h ->
          Alcotest.(check string) "router role" "router" h.Protocol.h_role;
          Alcotest.(check int)
            "one row per endpoint" (2 * shard_count)
            (List.length h.Protocol.h_endpoints);
          let find path =
            List.find
              (fun e -> e.Protocol.e_path = path)
              h.Protocol.h_endpoints
          in
          Array.iteri
            (fun i sock ->
              let e = find sock in
              Alcotest.(check string) "primary role" "primary"
                e.Protocol.e_role;
              Alcotest.(check int) "shard index" i e.Protocol.e_shard)
            c.shard_socks;
          Alcotest.(check bool) "killed primary reported down" false
            (find c.shard_socks.(1)).Protocol.e_up;
          let replicas =
            List.filter
              (fun e -> e.Protocol.e_role = "replica")
              h.Protocol.h_endpoints
          in
          Alcotest.(check int) "both replicas probed" 2 (List.length replicas);
          List.iter
            (fun e ->
              Alcotest.(check bool) "replica up" true e.Protocol.e_up;
              Alcotest.(check bool) "breaker state reported" true
                (List.mem e.Protocol.e_state [ "closed"; "open"; "half-open" ]);
              Alcotest.(check (option int)) "lag well-defined" (Some 0)
                e.Protocol.e_lag)
            replicas)

(* ------------------------------------------------------------------ *)
(* Update routing: by document hash, to the owning primary only.       *)

let test_update_routes_by_hash () =
  with_cluster () (fun c ->
      let uri = "fresh-doc.xml" in
      let owner = Corpus.Partition.shard_of_uri ~shards:shard_count uri in
      let other = 1 - owner in
      let op =
        Ftindex.Wal.Add_doc
          { uri; source = "<book><title>Fresh</title><p>usability</p></book>" }
      in
      (match
         Client.request ~socket_path:c.router_sock
           (Protocol.Update { ops = [ op ]; epoch = 0 })
       with
      | Ok (Protocol.Update_reply u) ->
          Alcotest.(check int) "one record" 1 u.Protocol.u_records
      | Ok (Protocol.Failure e) ->
          Alcotest.failf "update failed: %s: %s" e.Protocol.code
            e.Protocol.message
      | Ok _ -> Alcotest.fail "unexpected reply to update"
      | Error reason -> Alcotest.failf "transport error %s" reason);
      (* the owning shard's log took the record; the other's stayed empty *)
      let wal i =
        match Client.health ~socket_path:c.shard_socks.(i) () with
        | Ok h -> h.Protocol.h_wal_records
        | Error reason -> Alcotest.failf "health %d: %s" i reason
      in
      Alcotest.(check int) "owner appended" 1 (wal owner);
      Alcotest.(check int) "other untouched" 0 (wal other);
      let v = ok_value "count after add" (query c count_query) in
      Alcotest.(check (list string))
        "document visible" [ string_of_int (n_docs + 1) ] v.Protocol.items)

(* ------------------------------------------------------------------ *)
(* Rolling reload over the wire.                                       *)

let test_rolling_reload_over_wire () =
  with_cluster () (fun c ->
      match Client.reload ~socket_path:c.router_sock () with
      | Ok h ->
          Alcotest.(check bool) "serving floor" true (h.Protocol.h_generation >= 1);
          (* every shard performed exactly one reload, and kept serving *)
          Array.iter
            (fun sock ->
              match Client.stats ~socket_path:sock () with
              | Ok s ->
                  Alcotest.(check (option int))
                    "shard reloaded" (Some 1)
                    (List.assoc_opt "reloads" s.Protocol.counters)
              | Error reason -> Alcotest.failf "stats: %s" reason)
            c.shard_socks;
          let v = ok_value "after reload" (query c count_query) in
          Alcotest.(check (list string))
            "still serving" [ string_of_int n_docs ] v.Protocol.items
      | Error reason -> Alcotest.failf "reload failed: %s" reason)

(* ------------------------------------------------------------------ *)
(* Chaos: kills, restarts, torn frames, concurrent queries + updates.  *)

let test_chaos () =
  with_cluster () (fun c ->
      let deadline = Unix.gettimeofday () +. 3.0 in
      let violations = ref [] and vlock = Mutex.create () in
      let violation fmt =
        Printf.ksprintf
          (fun msg ->
            Mutex.lock vlock;
            violations := msg :: !violations;
            Mutex.unlock vlock)
          fmt
      in
      let full = Atomic.make 0
      and partial = Atomic.make 0
      and shed = Atomic.make 0 in
      let client_loop () =
        while Unix.gettimeofday () < deadline do
          let q =
            Protocol.query_request
              ~limits:
                {
                  Xquery.Limits.defaults with
                  Xquery.Limits.timeout = Some 1.5;
                }
              count_query
          in
          (match
             Client.query ~socket_path:c.router_sock ~retries:2
               ~deadline:(Unix.gettimeofday () +. 1.5)
               q
           with
          | Ok (Protocol.Value v) -> (
              match v.Protocol.partial with
              | None ->
                  Atomic.incr full;
                  (* updates only ever add documents *)
                  let bad_count =
                    match v.Protocol.items with
                    | [ n ] -> (
                        match int_of_string_opt n with
                        | Some k -> k < n_docs
                        | None -> true)
                    | _ -> true
                  in
                  if bad_count then
                    violation "full answer with bad count: [%s]"
                      (String.concat "; " v.Protocol.items)
              | Some p ->
                  Atomic.incr partial;
                  if
                    p.Protocol.missing = []
                    || List.exists
                         (fun i -> i < 0 || i >= shard_count)
                         p.Protocol.missing
                  then
                    violation "partial naming bogus partitions [%s]"
                      (String.concat ", "
                         (List.map string_of_int p.Protocol.missing)))
          | Ok (Protocol.Failure e) ->
              if e.Protocol.code = "gtlx:GTLX0009"
                 || e.Protocol.code = "gtlx:GTLX0011"
              then Atomic.incr shed
              else violation "unexpected failure %s: %s" e.Protocol.code
                     e.Protocol.message
          | Ok _ -> violation "non-query reply to a query"
          | Error reason ->
              (* the router itself must never be unreachable *)
              violation "transport error from the router: %s" reason);
          Thread.delay 0.01
        done
      in
      let update_loop () =
        let i = ref 0 in
        while Unix.gettimeofday () < deadline do
          incr i;
          let uri = Printf.sprintf "chaos-%d.xml" !i in
          let op =
            Ftindex.Wal.Add_doc
              {
                uri;
                source =
                  Printf.sprintf "<book><title>Chaos %d</title></book>" !i;
              }
          in
          (match
             Client.request ~socket_path:c.router_sock
               (Protocol.Update { ops = [ op ]; epoch = 0 })
           with
          | Ok (Protocol.Update_reply _) | Ok (Protocol.Failure _) -> ()
          | Ok _ -> violation "non-update reply to an update"
          | Error reason ->
              violation "transport error on update: %s" reason);
          Thread.delay 0.05
        done
      in
      let tear_loop () =
        (* torn and oversized frames straight at the router: it must shrug
           (client_errors), never desync or die *)
        while Unix.gettimeofday () < deadline do
          (try
             let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
             Fun.protect
               ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
               (fun () ->
                 Unix.connect fd (Unix.ADDR_UNIX c.router_sock);
                 ignore (Unix.write_substring fd "\xff\xff" 0 2))
           with Unix.Unix_error _ -> ());
          Thread.delay 0.05
        done
      in
      let chaos_loop () =
        let which = ref 0 in
        while Unix.gettimeofday () < deadline -. 0.8 do
          let i = !which land 1 in
          incr which;
          kill_shard c i;
          Thread.delay 0.25;
          start_shard c i;
          (* a rolling reload mid-churn must answer (possibly GTLX0011),
             never hang *)
          (match Client.reload ~recv_timeout:5.0 ~socket_path:c.router_sock () with
          | Ok _ | Error _ -> ());
          Thread.delay 0.2
        done
      in
      let threads =
        List.map
          (fun f -> Thread.create f ())
          [ client_loop; client_loop; update_loop; tear_loop; chaos_loop ]
      in
      List.iter Thread.join threads;
      (* quiesce: both shards up -> full answers must return *)
      Array.iteri (fun i r -> if !r = None then start_shard c i) c.servers;
      poll "full answers after the storm" (fun () ->
          match query c count_query with
          | Ok (Protocol.Value v) -> v.Protocol.partial = None
          | _ -> false);
      (match !violations with
      | [] -> ()
      | vs ->
          Alcotest.failf "%d invariant violation(s):\n%s" (List.length vs)
            (String.concat "\n" vs));
      if Atomic.get full = 0 then
        Alcotest.failf "no fully-answered query in the whole sweep (%d partial, %d shed)"
          (Atomic.get partial) (Atomic.get shed))

(* ------------------------------------------------------------------ *)
(* Automatic primary failover: the router detects the dead primary,
   promotes the caught-up follower onto a new epoch, redirects writes,
   and fences the restarted old primary off its stale timeline.        *)

let test_primary_failover () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let pdir = Filename.concat dir "pri" in
      let fdir = Filename.concat dir "fol" in
      Ftindex.Store.save ~dir:pdir (Ftindex.Indexer.index_strings sources);
      let psock = fresh_name "fop" ^ ".sock" in
      let fsock = fresh_name "fof" ^ ".sock" in
      let pcfg = shard_config ~dir:pdir ~sock:psock in
      let primary = ref (Some (Server.start pcfg)) in
      let follower =
        Server.start
          { (shard_config ~dir:fdir ~sock:fsock) with Server.follow = Some psock }
      in
      let router_sock = fresh_name "fort" ^ ".sock" in
      let cfg =
        {
          (Router.default_config
             ~shards:[ { Router.primary = psock; replicas = [ fsock ] } ]
             ~socket_path:router_sock)
          with
          Router.workers = 2;
          retries = 1;
          default_deadline = 3.0;
          tick_interval = 0.02;
          probe_timeout = 0.2;
          reload_timeout = 10.0;
          primary_failover = true;
          failover_ticks = 2;
        }
      in
      let router = Router.start cfg in
      Fun.protect
        ~finally:(fun () ->
          Router.stop router;
          Server.stop follower;
          match !primary with Some t -> Server.stop t | None -> ())
        (fun () ->
          let health sock =
            match Client.health ~socket_path:sock () with
            | Ok h -> h
            | Error reason -> Alcotest.failf "health %s: %s" sock reason
          in
          let converged () =
            match
              (Client.health ~socket_path:psock (), Client.health ~socket_path:fsock ())
            with
            | Ok p, Ok f ->
                p.Protocol.h_generation = f.Protocol.h_generation
                && p.Protocol.h_seq = f.Protocol.h_seq
                && p.Protocol.h_manifest_crc = f.Protocol.h_manifest_crc
            | _ -> false
          in
          let rstat key =
            match Client.stats ~socket_path:router_sock () with
            | Ok s ->
                Option.value ~default:0
                  (List.assoc_opt key s.Protocol.counters)
            | Error _ -> 0
          in
          let send_update i =
            let op =
              Ftindex.Wal.Add_doc
                {
                  uri = Printf.sprintf "failover-%d.xml" i;
                  source =
                    Printf.sprintf "<book><title>Failover %d</title></book>" i;
                }
            in
            Client.request ~socket_path:router_sock
              (Protocol.Update { ops = [ op ]; epoch = 0 })
          in
          poll "follower bootstraps" converged;
          (* writes flow through the router onto the original timeline *)
          (match send_update 0 with
          | Ok (Protocol.Update_reply u) ->
              Alcotest.(check int) "epoch-1 write" 1 u.Protocol.u_epoch
          | _ -> Alcotest.fail "routed update failed");
          poll "follower catches up" converged;
          (* kill -9 the primary: the router's health sweep notices and
             promotes the caught-up follower onto epoch 2 *)
          (match !primary with
          | Some t ->
              primary := None;
              Server.stop t
          | None -> ());
          poll ~tries:500 "router fails over" (fun () -> rstat "failovers" >= 1);
          let h = health fsock in
          Alcotest.(check string) "follower promoted" "primary"
            h.Protocol.h_role;
          Alcotest.(check int) "new timeline" 2 h.Protocol.h_epoch;
          (* hash-routed writes resume, stamped with the new epoch *)
          poll ~tries:500 "writes resume on the new primary" (fun () ->
              match send_update 1 with
              | Ok (Protocol.Update_reply u) -> u.Protocol.u_epoch = 2
              | _ -> false);
          (* the restarted old primary claims the stale timeline: the
             router demotes it and it re-syncs onto the new one *)
          primary := Some (Server.start pcfg);
          poll ~tries:500 "old primary demoted" (fun () ->
              match Client.health ~socket_path:psock () with
              | Ok h -> h.Protocol.h_role = "replica"
              | Error _ -> false);
          Alcotest.(check bool) "demotes counted" true (rstat "demotes_sent" >= 1);
          poll ~tries:500 "old primary converges onto the new timeline"
            (fun () -> converged () && (health psock).Protocol.h_epoch = 2);
          (* the cluster still answers in full through the router *)
          match
            Client.request ~socket_path:router_sock
              (Protocol.Query
                 (Protocol.query_request ~limits:short_limits count_query))
          with
          | Ok (Protocol.Value v) ->
              Alcotest.(check (list string))
                "full answer after failover"
                [ string_of_int (n_docs + 2) ]
                v.Protocol.items;
              Alcotest.(check bool) "not partial" true (v.Protocol.partial = None)
          | _ -> Alcotest.fail "query through the router failed"))

let tests =
  [
    Alcotest.test_case "merge classify" `Quick test_merge_classify;
    Alcotest.test_case "merge score extraction" `Quick test_merge_scores;
    Alcotest.test_case "merge top-k" `Quick test_merge_topk;
    Alcotest.test_case "merge sum" `Quick test_merge_sum;
    Alcotest.test_case "concat document order" `Quick test_concat_document_order;
    Alcotest.test_case "count sums across shards" `Quick
      test_count_sums_across_shards;
    Alcotest.test_case "top-k over the wire" `Quick test_topk_over_wire;
    Alcotest.test_case "authoritative error propagates" `Quick
      test_authoritative_error_propagates;
    Alcotest.test_case "partial when shard down" `Quick
      test_partial_when_shard_down;
    Alcotest.test_case "all partitions down" `Quick test_all_down_fails_gtlx0011;
    Alcotest.test_case "replica failover" `Quick test_replica_failover;
    Alcotest.test_case "stale replicas fail (GTLX0012)" `Quick
      test_stale_replicas_fail_gtlx0012;
    Alcotest.test_case "stale replica served when unbounded" `Quick
      test_stale_replica_served_when_unbounded;
    Alcotest.test_case "replica within bound serves" `Quick
      test_replica_within_bound_serves;
    Alcotest.test_case "health reports endpoints" `Quick
      test_health_reports_endpoints;
    Alcotest.test_case "update routes by hash" `Quick test_update_routes_by_hash;
    Alcotest.test_case "rolling reload over wire" `Quick
      test_rolling_reload_over_wire;
    Alcotest.test_case "chaos" `Quick test_chaos;
    Alcotest.test_case "primary failover" `Quick test_primary_failover;
  ]
