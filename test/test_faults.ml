(* Fault-injection sweep (the robustness contract of the engine boundary):
   arm a deterministic "fail at eval step N" injector for every reachable
   step index and assert that Engine.run_report either

     - answers correctly after falling back to the reference materialized
       strategy (fallback enabled, optimized strategy), or
     - raises a structured Errors.Error with an Internal-class code
       (fallback disabled),

   and NEVER lets a raw Failure / Stack_overflow / arbitrary OCaml
   exception escape. *)

open Galatex

let engine = lazy (Corpus.Usecases.engine ())

(* A query that exercises parsing, FLWOR, paths and both full-text
   expressions, so injection points cover every evaluation layer. *)
let query =
  {|for $b in collection()//book
    where $b ftcontains "usability" || "software"
    return string($b/@number)|}

let baseline strategy =
  let r =
    Engine.run_report (Lazy.force engine) ~strategy
      ~optimizations:Engine.all_optimizations query
  in
  Alcotest.(check bool) "baseline does not fall back" false r.Engine.fell_back;
  r

(* Sweep at most ~150 injection points so the quadratic cost stays cheap;
   always include the first and last steps. *)
let sweep_points total =
  let stride = max 1 (total / 150) in
  let rec go n acc = if n > total then acc else go (n + stride) (n :: acc) in
  List.sort_uniq compare (1 :: total :: go 1 [])

let test_sweep_fallback () =
  let base = baseline Engine.Native_pipelined in
  let expected = Xquery.Value.to_display_string base.Engine.value in
  List.iter
    (fun n ->
      match
        Engine.run_report (Lazy.force engine) ~strategy:Engine.Native_pipelined
          ~optimizations:Engine.all_optimizations ~fault_at:n ~fallback:true
          query
      with
      | r ->
          Alcotest.(check bool)
            (Printf.sprintf "fault@%d degraded gracefully" n)
            true r.Engine.fell_back;
          Alcotest.(check string)
            (Printf.sprintf "fault@%d same answer" n)
            expected
            (Xquery.Value.to_display_string r.Engine.value);
          (match r.Engine.fallback_error with
          | Some e ->
              Alcotest.(check string)
                (Printf.sprintf "fault@%d recorded as internal" n)
                "internal"
                (Xquery.Errors.class_string
                   (Xquery.Errors.class_of e.Xquery.Errors.code))
          | None -> Alcotest.failf "fault@%d: fallback_error not recorded" n)
      | exception Xquery.Errors.Error _ ->
          (* acceptable only if the fallback path itself was faulted;
             with a single-shot injector this cannot happen *)
          Alcotest.failf "fault@%d: fallback should have absorbed the fault" n
      | exception e ->
          Alcotest.failf "fault@%d: raw exception escaped: %s" n
            (Printexc.to_string e))
    (sweep_points base.Engine.steps)

let test_sweep_no_fallback () =
  (* without fallback every injected fault must surface as a structured
     internal error — never a raw exception *)
  let base = baseline Engine.Native_pipelined in
  List.iter
    (fun n ->
      match
        Engine.run_report (Lazy.force engine) ~strategy:Engine.Native_pipelined
          ~optimizations:Engine.all_optimizations ~fault_at:n ~fallback:false
          query
      with
      | _ -> Alcotest.failf "fault@%d: expected an error" n
      | exception Xquery.Errors.Error e ->
          Alcotest.(check string)
            (Printf.sprintf "fault@%d structured internal" n)
            "internal"
            (Xquery.Errors.class_string
               (Xquery.Errors.class_of e.Xquery.Errors.code))
      | exception e ->
          Alcotest.failf "fault@%d: raw exception escaped: %s" n
            (Printexc.to_string e))
    (sweep_points base.Engine.steps)

let test_reference_strategy_never_falls_back () =
  (* the reference path has nothing to fall back to: injected faults
     surface as structured GTLX0005 even with fallback enabled *)
  let base =
    Engine.run_report (Lazy.force engine) ~strategy:Engine.Native_materialized
      query
  in
  List.iter
    (fun n ->
      match
        Engine.run_report (Lazy.force engine)
          ~strategy:Engine.Native_materialized ~fault_at:n ~fallback:true query
      with
      | _ -> Alcotest.failf "fault@%d: expected an error" n
      | exception
          Xquery.Errors.Error { code = Xquery.Errors.GTLX0005; _ } ->
          ()
      | exception e ->
          Alcotest.failf "fault@%d: expected GTLX0005, got %s" n
            (Printexc.to_string e))
    (sweep_points base.Engine.steps)

let test_fallback_counter () =
  let eng = Corpus.Usecases.engine () in
  Alcotest.(check int) "fresh engine" 0 (Engine.fallback_count eng);
  ignore
    (Engine.run_report eng ~strategy:Engine.Native_pipelined ~fault_at:5
       ~fallback:true query);
  Alcotest.(check int) "one degradation" 1 (Engine.fallback_count eng)

let test_translated_strategy_faults () =
  (* the translated (all-XQuery) strategy runs through the same governed
     eval loop, so injection works there too *)
  match
    Engine.run_report (Lazy.force engine) ~strategy:Engine.Translated
      ~fault_at:50 ~fallback:true query
  with
  | r -> Alcotest.(check bool) "fell back" true r.Engine.fell_back
  | exception Xquery.Errors.Error _ -> ()
  | exception e ->
      Alcotest.failf "raw exception escaped: %s" (Printexc.to_string e)

let tests =
  [
    Alcotest.test_case "sweep: fallback absorbs faults" `Quick
      test_sweep_fallback;
    Alcotest.test_case "sweep: structured errors without fallback" `Quick
      test_sweep_no_fallback;
    Alcotest.test_case "sweep: reference strategy surfaces GTLX0005" `Quick
      test_reference_strategy_never_falls_back;
    Alcotest.test_case "fallback counter" `Quick test_fallback_counter;
    Alcotest.test_case "translated strategy" `Quick
      test_translated_strategy_faults;
  ]
