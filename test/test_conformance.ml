(* Deep cross-implementation conformance:

   1. The XQuery fts module and the native operators produce
      solution-identical *AllMatches values* (not just equal query results)
      for randomized selections — the translated plan's fts:FTContains
      argument is evaluated through the XQuery engine, parsed back from XML,
      and compared with the native evaluation of the same selection.

   2. Printing a parsed selection and reparsing it preserves semantics
      (evaluated AllMatches solutions are identical). *)

open Galatex
open Xquery.Ast

let engine = lazy (Corpus.Fig1.engine ())
let env () = Engine.env (Lazy.force engine)

let gen_selection_src =
  let open QCheck2.Gen in
  let words = [ "usability"; "software"; "users"; "filler7"; "nosuchword" ] in
  let leaf =
    map2
      (fun w opt -> Printf.sprintf "\"%s\"%s" w opt)
      (oneofl words)
      (oneofl [ ""; " with stemming"; " case sensitive"; " with wildcards" ])
  in
  let rec sel depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (4, leaf);
          (2, map2 (Printf.sprintf "(%s && %s)") (sel (depth - 1)) (sel (depth - 1)));
          (2, map2 (Printf.sprintf "(%s || %s)") (sel (depth - 1)) (sel (depth - 1)));
          (1, map (Printf.sprintf "(! %s)") leaf);
          (1, map (Printf.sprintf "(%s ordered)") (sel (depth - 1)));
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s distance at most %d words)" a n)
              (sel (depth - 1)) (int_range 1 30) );
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s window %d words)" a n)
              (sel (depth - 1)) (int_range 2 40) );
          ( 1,
            map2
              (fun a n -> Printf.sprintf "(%s occurs at least %d times)" a n)
              (sel (depth - 1)) (int_range 1 2) );
          (1, map (Printf.sprintf "(%s same sentence)") (sel (depth - 1)));
          (1, map (Printf.sprintf "(%s same paragraph)") (sel (depth - 1)));
        ]
  in
  sel 2

let book_node () =
  Option.get
    (Ftindex.Inverted.document_root (Engine.index (Lazy.force engine))
       Corpus.Fig1.uri)

(* native evaluation restricted to the book context, like the translated
   plan's $evalCtx *)
let native_all_matches sel_src =
  let q = Xquery.Parser.parse_query (". ftcontains " ^ sel_src) in
  match q.body with
  | Ft_contains { selection; _ } ->
      let resolve_doc = Fts_module.make_resolver (env ()) in
      let ctx = Xquery.Eval.setup_context ~resolve_doc q in
      let within = Ft_eval.context_filter (env ()) [ book_node () ] in
      Ft_eval.all_matches ?within (env ()) ~eval:Xquery.Eval.eval ctx selection
  | _ -> assert false

(* the same selection through the XQuery fts module: translate, pull out the
   fts:FTContains argument, evaluate it, parse the XML AllMatches back *)
let xquery_all_matches sel_src =
  let q =
    Xquery.Parser.parse_query
      ("(fn:doc(\"" ^ Corpus.Fig1.uri ^ "\")/book) ftcontains " ^ sel_src)
  in
  let tq = Translate.translate_query q in
  match tq.body with
  | Flwor ([ Let_clause { var; value } ], Call ("fts:FTContains", [ Var _; am_expr ]))
    ->
      let ctx = Fts_module.setup_context (env ()) tq in
      let ctx_value = Xquery.Eval.eval ctx value in
      let ctx = Xquery.Context.bind_var ctx var ctx_value in
      (match Xquery.Eval.eval ctx am_expr with
      | [ Xquery.Value.Node n ] -> All_matches.of_xml n
      | _ -> Alcotest.fail "fts module did not return one AllMatches element")
  | _ -> Alcotest.fail "unexpected translated shape"

let prop_allmatches_equal =
  QCheck2.Test.make
    ~name:"XQuery fts module and native operators build identical AllMatches"
    ~count:60 ~print:(fun s -> s) gen_selection_src (fun sel_src ->
      let native = native_all_matches sel_src in
      let via_xquery = xquery_all_matches sel_src in
      All_matches.equal_solutions native via_xquery)

let prop_print_parse_semantics =
  QCheck2.Test.make
    ~name:"printing and reparsing a selection preserves its AllMatches"
    ~count:60 gen_selection_src (fun sel_src ->
      let q = Xquery.Parser.parse_query (". ftcontains " ^ sel_src) in
      let printed = Xquery.Printer.query_to_string q in
      let q2 = Xquery.Parser.parse_query printed in
      match (q.body, q2.body) with
      | Ft_contains { selection = s1; _ }, Ft_contains { selection = s2; _ } ->
          let eval sel =
            let resolve_doc = Fts_module.make_resolver (env ()) in
            let ctx = Xquery.Eval.setup_context ~resolve_doc q in
            Ft_eval.all_matches (env ()) ~eval:Xquery.Eval.eval ctx sel
          in
          All_matches.equal_solutions (eval s1) (eval s2)
      | _ -> false)

(* spot checks that the two implementations agree on the exact Figure 3
   values, not just abstractly *)
let test_fig3_through_both () =
  let sel = {|"usability" && "software" distance at most 10 words|} in
  let native = native_all_matches sel in
  let via_xquery = xquery_all_matches sel in
  Alcotest.check Alcotest.int "native count" 3 (All_matches.size native);
  Alcotest.check Alcotest.int "xquery count" 3 (All_matches.size via_xquery);
  Alcotest.check Alcotest.bool "same solutions" true
    (All_matches.equal_solutions native via_xquery);
  (* scores too, modulo float noise *)
  let scores am =
    List.sort compare
      (List.map (fun (m : All_matches.match_) -> m.All_matches.score) am.All_matches.matches)
  in
  List.iter2
    (fun a b ->
      Alcotest.check (Alcotest.float 1e-9) "same score" a b)
    (scores native) (scores via_xquery)

(* Regression: FTTimes over an FTAnd that duplicates a word produces
   occurrence-matches tied on their first position; both implementations
   must break the tie identically (stable sort over input order) or they
   enumerate different — satisfaction-equivalent but not solution-identical
   — window sets. *)
let test_times_over_duplicated_and () =
  List.iter
    (fun sel ->
      let native = native_all_matches sel in
      let via_xquery = xquery_all_matches sel in
      Alcotest.check Alcotest.bool (sel ^ ": same solutions") true
        (All_matches.equal_solutions native via_xquery))
    [
      {|(("usability" && "usability") occurs at least 2 times)|};
      {|(("usability" && "usability") occurs at most 2 times)|};
      {|(("software" && "software" && "software") occurs exactly 2 times)|};
      {|(("usability" || "usability") occurs at least 1 times)|};
      {|(("usability" && "usability") distance at most 1 words)|};
      {|(("usability" && "usability") distance at least 1 words)|};
      {|(("software" && "software") window 2 words)|};
      {|(("usability" && "usability") ordered)|};
      {|(("usability" && "usability") same sentence)|};
    ]

let tests =
  [
    Alcotest.test_case "Figure 3 through both implementations" `Quick
      test_fig3_through_both;
    Alcotest.test_case "FTTimes tie-breaking over duplicated words" `Quick
      test_times_over_duplicated_and;
    QCheck_alcotest.to_alcotest prop_allmatches_equal;
    QCheck_alcotest.to_alcotest prop_print_parse_semantics;
  ]
