(* Workload layer: Zipf vocabulary properties, trace determinism, replay
   bookkeeping against a live in-process daemon, and the SLO gate (which
   must itself be tested, or the gate rots silently). *)

module Vocab = Corpus.Vocab
module Splitmix = Corpus.Splitmix
module Trace = Workload.Trace
module Replay = Workload.Replay
module Report = Workload.Report
module Gate = Workload.Gate

(* --- plumbing (the test_server idiom) --- *)

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let sources =
  [
    ( "a.xml",
      "<book number=\"1\"><section><title>ra sa</title><p>ba ca da ra sa \
       ta</p></section></book>" );
    ( "b.xml",
      "<book number=\"2\"><section><title>ba ta</title><p>ra ba sa ca ta \
       da</p></section></book>" );
  ]

let with_server f =
  let dir = fresh_name "wl-scratch" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Ftindex.Store.save ~dir (Ftindex.Indexer.index_strings sources);
      let sock = fresh_name "wl" ^ ".sock" in
      let cfg =
        Galatex_server.Server.default_config ~index_dir:dir ~socket_path:sock
      in
      let t = Galatex_server.Server.start cfg in
      Fun.protect
        ~finally:(fun () -> Galatex_server.Server.stop t)
        (fun () -> f sock))

(* --- Vocab: cumulative Zipf array shape (satellite property 1) --- *)

let prop_cumulative_monotone =
  let gen = QCheck2.Gen.(pair (1 -- 120) (float_bound_inclusive 2.5)) in
  QCheck2.Test.make ~count:50 ~name:"Vocab cumulative monotone, ends at 1.0"
    gen (fun (size, skew) ->
      let v = Vocab.create ~skew size in
      let c = Vocab.cumulative v in
      Array.length c = size
      && c.(0) > 0.0
      && Array.for_all (fun x -> x >= 0.0) c
      && (let ok = ref true in
          for i = 1 to size - 1 do
            if c.(i) < c.(i - 1) then ok := false
          done;
          !ok)
      && Float.abs (c.(size - 1) -. 1.0) < 1e-9)

(* --- Vocab: draw is in-vocabulary with its stated mass --- *)

let prop_draw_mass =
  let gen = QCheck2.Gen.(pair (0 -- 100_000) (2 -- 50)) in
  QCheck2.Test.make ~count:25
    ~name:"Vocab draw: in-vocabulary, rank-0 empirical mass matches" gen
    (fun (seed, size) ->
      let v = Vocab.create ~skew:1.0 size in
      let rng = Splitmix.create seed in
      let draws = 2000 in
      let rank0 = ref 0 and in_vocab = ref true in
      for _ = 1 to draws do
        let rank, word = Vocab.draw v rng in
        if rank < 0 || rank >= size || word <> Vocab.word v rank then
          in_vocab := false;
        if rank = 0 then incr rank0
      done;
      let empirical = float_of_int !rank0 /. float_of_int draws in
      !in_vocab && Float.abs (empirical -. Vocab.mass v 0) < 0.06)

(* --- Trace: deterministic per seed, distinct across seeds --- *)

let trace_spec seed =
  {
    Trace.default_spec with
    Trace.seed;
    requests = 30;
    rate = 500.0;
    update_every = Some 5;
    update_batch = 2;
  }

let prop_trace_determinism =
  let gen = QCheck2.Gen.(0 -- 100_000) in
  QCheck2.Test.make ~count:25
    ~name:"Trace: same seed byte-identical, different seed differs" gen
    (fun seed ->
      let a = Trace.to_string (Trace.generate (trace_spec seed)) in
      let b = Trace.to_string (Trace.generate (trace_spec seed)) in
      let c = Trace.to_string (Trace.generate (trace_spec (seed + 1))) in
      a = b && a <> c)

(* --- percentile vs an independent reference (satellite 3) --- *)

(* nearest-rank from first principles: the smallest sample with at least
   ceil(p * n) samples at or below it (p = 0 degenerates to the min) *)
let reference_percentile values p =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
  List.nth sorted (min (n - 1) (rank - 1))

let test_percentile_reference () =
  let vector = [ 12.0; 3.0; 47.0; 8.0; 30.0; 1.0; 19.0; 5.0; 24.0; 16.0 ] in
  let sorted = Array.of_list (List.sort compare vector) in
  List.iter
    (fun p ->
      let got = Replay.percentile sorted p in
      let want = reference_percentile vector p in
      (* the two nearest-rank conventions may straddle one sample; accept
         either neighbour of the reference rank *)
      let idx = ref 0 in
      Array.iteri (fun i x -> if x = want then idx := i) sorted;
      let neighbours =
        [ want ]
        @ (if !idx + 1 < Array.length sorted then [ sorted.(!idx + 1) ] else [])
      in
      if not (List.mem got neighbours) then
        Alcotest.failf "p%.2f: got %.1f, reference %.1f" p got want)
    [ 0.5; 0.9; 0.95; 0.99; 1.0 ];
  (* exact spot checks for the shipped estimator *)
  Alcotest.(check (float 0.0)) "p50 of 10" 16.0 (Replay.percentile sorted 0.5);
  Alcotest.(check (float 0.0)) "p99 of 10" 47.0 (Replay.percentile sorted 0.99);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Replay.percentile [||] 0.5))

(* --- replay bookkeeping against a live daemon --- *)

let test_replay_bookkeeping () =
  with_server (fun sock ->
      let trace = Trace.generate (trace_spec 7) in
      let r = Replay.run ~socket_path:sock ~concurrency:4 trace in
      let { Replay.full; partial; shed; error } = r.Replay.counts in
      Alcotest.(check int) "issued = trace length" (Array.length trace)
        r.Replay.issued;
      Alcotest.(check int) "full+partial+shed+error = issued"
        r.Replay.issued
        (full + partial + shed + error);
      Alcotest.(check int) "one latency sample per event" r.Replay.issued
        (Array.length r.Replay.latencies_sorted_ms);
      let sorted = Array.copy r.Replay.latencies_sorted_ms in
      Array.sort compare sorted;
      Alcotest.(check bool) "latencies sorted" true
        (sorted = r.Replay.latencies_sorted_ms);
      Alcotest.(check bool) "queries answered against a healthy daemon" true
        (full > 0 && error = 0))

(* against a dead socket every event still gets classified: error *)
let test_replay_all_errors () =
  let trace = Trace.generate { (trace_spec 9) with Trace.update_every = None } in
  let r =
    Replay.run
      ~socket_path:(fresh_name "wl-nosuch" ^ ".sock")
      ~concurrency:4 ~client_timeout:0.5 trace
  in
  Alcotest.(check int) "all classified as errors" r.Replay.issued
    r.Replay.counts.Replay.error

(* --- the gate (satellite 4) --- *)

let scenario name =
  {
    Report.name;
    requests = 100;
    rate = 100.0;
    concurrency = 8;
    p50_ms = 20.0;
    p95_ms = 60.0;
    p99_ms = 100.0;
    full = 96;
    partial = 2;
    shed = 1;
    error = 1;
    counters = [ ("queries", 100) ];
    replica_lag = Some 0;
    gate = [];
  }

let baseline_json =
  Report.to_json ~meta:[ ("experiment", "R9") ]
    [ scenario "zipf-read-only"; scenario "mixed-read-write" ]

let test_gate_identical_passes () =
  match Gate.check ~baseline:baseline_json ~fresh:baseline_json () with
  | Ok [] -> ()
  | Ok vs ->
      Alcotest.failf "identical run flagged: %s"
        (String.concat "; " (List.map Gate.describe vs))
  | Error e -> Alcotest.failf "gate parse error: %s" e

let test_gate_regression_names_slo () =
  (* p99 doubled and shed-rate up 10 points on one scenario *)
  let regressed =
    Report.to_json
      [
        scenario "zipf-read-only";
        { (scenario "mixed-read-write") with
          Report.p99_ms = 200.0;
          shed = 11;
          full = 86;
        };
      ]
  in
  match Gate.check ~baseline:baseline_json ~fresh:regressed () with
  | Ok violations ->
      let names = List.map (fun v -> (v.Gate.scenario, v.Gate.metric)) violations in
      Alcotest.(check bool) "names the p99 SLO" true
        (List.mem ("mixed-read-write", "p99_ms") names);
      Alcotest.(check bool) "names the shed-rate SLO" true
        (List.mem ("mixed-read-write", "shed_rate") names);
      Alcotest.(check bool) "healthy scenario unflagged" true
        (List.for_all (fun (s, _) -> s <> "zipf-read-only") names);
      List.iter
        (fun v ->
          let d = Gate.describe v in
          Alcotest.(check bool) "description carries the scenario" true
            (String.length d > 0))
        violations
  | Error e -> Alcotest.failf "gate parse error: %s" e

let test_gate_missing_scenario () =
  let fresh = Report.to_json [ scenario "zipf-read-only" ] in
  match Gate.check ~baseline:baseline_json ~fresh () with
  | Ok violations ->
      Alcotest.(check bool) "missing scenario flagged" true
        (List.exists
           (fun v ->
             v.Gate.scenario = "mixed-read-write"
             && v.Gate.metric = "missing_scenario")
           violations)
  | Error e -> Alcotest.failf "gate parse error: %s" e

let test_gate_per_scenario_override () =
  (* a baseline override grants one scenario the headroom the defaults
     would refuse *)
  let forgiving =
    Report.to_json
      [
        scenario "zipf-read-only";
        { (scenario "mixed-read-write") with
          Report.gate = [ ("p99_ratio", 10.0) ];
        };
      ]
  in
  let regressed =
    Report.to_json
      [
        scenario "zipf-read-only";
        { (scenario "mixed-read-write") with Report.p99_ms = 400.0 };
      ]
  in
  (match Gate.check ~baseline:forgiving ~fresh:regressed () with
  | Ok [] -> ()
  | Ok vs ->
      Alcotest.failf "override ignored: %s"
        (String.concat "; " (List.map Gate.describe vs))
  | Error e -> Alcotest.failf "gate parse error: %s" e);
  match Gate.check ~baseline:baseline_json ~fresh:regressed () with
  | Ok vs ->
      Alcotest.(check bool) "defaults still catch it" true
        (List.exists (fun v -> v.Gate.metric = "p99_ms") vs)
  | Error e -> Alcotest.failf "gate parse error: %s" e

let test_gate_malformed_is_error () =
  match Gate.check ~baseline:"{ not json" ~fresh:baseline_json () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed baseline accepted"

(* --- report JSON round-trip through the hand-rolled parser --- *)

let test_report_roundtrip () =
  let original =
    [ scenario "zipf-read-only"; { (scenario "topk-heavy") with
        Report.replica_lag = None; gate = [ ("shed_pts", 5.0) ] } ]
  in
  match Report.of_json (Report.to_json ~meta:[ ("seed", "42") ] original) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok parsed ->
      Alcotest.(check int) "scenario count" (List.length original)
        (List.length parsed);
      List.iter2
        (fun (a : Report.scenario) (b : Report.scenario) ->
          Alcotest.(check string) "name" a.Report.name b.Report.name;
          Alcotest.(check (float 1e-9)) "p99" a.p99_ms b.p99_ms;
          Alcotest.(check (float 1e-9)) "p95" a.p95_ms b.p95_ms;
          Alcotest.(check int) "shed" a.shed b.shed;
          Alcotest.(check bool) "lag" true (a.replica_lag = b.replica_lag);
          Alcotest.(check bool) "gate overrides" true (a.gate = b.gate))
        original parsed

let tests =
  [
    QCheck_alcotest.to_alcotest prop_cumulative_monotone;
    QCheck_alcotest.to_alcotest prop_draw_mass;
    QCheck_alcotest.to_alcotest prop_trace_determinism;
    Alcotest.test_case "percentile matches reference on fixed vector" `Quick
      test_percentile_reference;
    Alcotest.test_case "replay bookkeeping: counts sum to issued" `Quick
      test_replay_bookkeeping;
    Alcotest.test_case "replay against dead socket: all errors" `Quick
      test_replay_all_errors;
    Alcotest.test_case "gate: identical run passes" `Quick
      test_gate_identical_passes;
    Alcotest.test_case "gate: regression names scenario and metric" `Quick
      test_gate_regression_names_slo;
    Alcotest.test_case "gate: missing scenario is a violation" `Quick
      test_gate_missing_scenario;
    Alcotest.test_case "gate: per-scenario baseline override" `Quick
      test_gate_per_scenario_override;
    Alcotest.test_case "gate: malformed JSON is an error" `Quick
      test_gate_malformed_is_error;
    Alcotest.test_case "report JSON round-trips" `Quick test_report_roundtrip;
  ]
