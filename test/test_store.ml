(* The persistent-store robustness contract:

   1. save |> load is the identity on indexes (qcheck over random corpora,
      plus empty-index and multi-segment-word edge cases);
   2. a fault injected at *any* I/O operation of a save or a load yields
      exactly one of: an exact round trip, a salvage with a damage report
      (still exact, given sources), or a structured gtlx: storage error —
      never a raw exception, never silently wrong postings;
   3. a save crashing over an existing snapshot leaves the old or the new
      index loadable — never a mix;
   4. on-disk corruption (bit flips, truncation, version patches, missing
      manifest) is detected and either salvaged or reported structurally.

   Exactness is cross-checked at the query level: a recovered engine must
   answer a use-case query identically to a freshly indexed one. *)

open Ftindex

let storage_codes =
  [ Xquery.Errors.GTLX0006; Xquery.Errors.GTLX0007; Xquery.Errors.GTLX0008 ]

(* --- scratch directories (inside the dune sandbox cwd) --- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Printf.sprintf "store-scratch-%d-%d" (Unix.getpid ()) !dir_counter

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- structural index equality (documents, tokens, postings, scores) --- *)

let index_eq (a : Inverted.t) (b : Inverted.t) =
  let doc_sig i =
    List.map (fun (u, r) -> (u, Xmlkit.Printer.to_string r)) (Inverted.documents i)
  in
  doc_sig a = doc_sig b
  && Inverted.total_postings a = Inverted.total_postings b
  && Inverted.distinct_words a = Inverted.distinct_words b
  && List.for_all
       (fun w -> Inverted.postings a w = Inverted.postings b w)
       (Inverted.distinct_words a)
  && List.for_all
       (fun (u, _) ->
         Inverted.tokens_of_doc a ~doc:u = Inverted.tokens_of_doc b ~doc:u)
       (Inverted.documents a)

let check_same msg a b = Alcotest.(check bool) msg true (index_eq a b)

(* --- fixtures --- *)

let corpus_sources =
  [
    ( "a.xml",
      "<book><title>Usability testing</title><p>Software usability and \
       testing of web site design requirements.</p></book>" );
    ( "b.xml",
      "<book><title>Web design</title><p>Practical web design including \
       usability goals and testing plans.</p></book>" );
  ]

let corpus_index () = Indexer.index_strings corpus_sources

let faults =
  [
    ("io-error", Store.Io.Io_error);
    ("crash", Store.Io.Crash);
    ("torn-0", Store.Io.Torn_write 0);
    ("torn-17", Store.Io.Torn_write 17);
    ("bitflip-3", Store.Io.Bit_flip 3);
    ("bitflip-99", Store.Io.Bit_flip 99);
  ]

(* --- round trips --- *)

let test_roundtrip () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~dir index;
      let l = Store.load ~dir () in
      Alcotest.(check bool) "clean report" true (Store.clean l.Store.report);
      check_same "round trip" index l.Store.index)

let test_roundtrip_empty () =
  let index = Inverted.empty () in
  with_dir (fun dir ->
      Store.save ~dir index;
      let l = Store.load ~dir () in
      Alcotest.(check bool) "clean report" true (Store.clean l.Store.report);
      check_same "empty round trip" index l.Store.index)

let test_roundtrip_multi_segment () =
  (* segment_postings = 1 forces every word's postings to spill across
     consecutive single-posting segments *)
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~segment_postings:1 ~dir index;
      Alcotest.(check bool)
        "several posting segments" true
        (Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> String.length f > 5 && String.sub f 0 5 = "post-")
        |> List.length > 1);
      let l = Store.load ~dir () in
      Alcotest.(check bool) "clean report" true (Store.clean l.Store.report);
      check_same "multi-segment round trip" index l.Store.index)

let test_save_replaces_previous () =
  with_dir (fun dir ->
      let a = corpus_index () in
      let b = Indexer.index_strings [ List.hd corpus_sources ] in
      Store.save ~dir a;
      Store.save ~dir b;
      let l = Store.load ~dir () in
      Alcotest.(check bool) "clean report" true (Store.clean l.Store.report);
      check_same "second save wins" b l.Store.index)

(* --- qcheck: save |> load = id on random corpora --- *)

let gen_profile =
  let open QCheck2.Gen in
  let* seed = int_range 0 1000 in
  let* doc_count = int_range 1 4 in
  let* sections = int_range 1 2 in
  let* words = int_range 5 25 in
  let* vocab = int_range 10 80 in
  return
    {
      Corpus.Generator.default_profile with
      Corpus.Generator.seed;
      doc_count;
      sections_per_doc = sections;
      paras_per_section = 2;
      words_per_para = words;
      vocab_size = vocab;
    }

let prop_roundtrip_id =
  QCheck2.Test.make ~name:"Store.save |> Store.load = id" ~count:25
    QCheck2.Gen.(pair gen_profile (int_range 1 64))
    (fun (profile, segment_postings) ->
      let index = Corpus.Generator.index_books profile in
      with_dir (fun dir ->
          Store.save ~segment_postings ~dir index;
          let l = Store.load ~dir () in
          Store.clean l.Store.report && index_eq index l.Store.index))

(* --- fault sweeps ---

   Outcome trichotomy for every injection point: exact round trip, salvage
   with a report (still exact, sources provided), or a structured storage
   error.  [Io.Crashed] may escape a save (simulated process death) but
   never a load. *)

let structured_storage e =
  List.mem e.Xquery.Errors.code storage_codes
  || (* a transient read failure of the manifest surfaces as retrieval *)
  e.Xquery.Errors.code = Xquery.Errors.FODC0002

let check_load_outcome ~name ~expect ?(alternates = []) ~sources dir =
  match Store.load ~sources ~dir () with
  | l ->
      Alcotest.(check bool)
        (name ^ ": loaded index exact")
        true
        (List.exists (index_eq l.Store.index) (expect :: alternates))
  | exception Xquery.Errors.Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: structured storage error (got %s)" name
           (Xquery.Errors.code_string e.Xquery.Errors.code))
        true (structured_storage e)
  | exception exn ->
      Alcotest.failf "%s: raw exception escaped load: %s" name
        (Printexc.to_string exn)

let count_save_ops index =
  with_dir (fun dir ->
      let io = Store.Io.real () in
      Store.save ~io ~dir index;
      Store.Io.ops io)

let test_save_fault_sweep () =
  let index = corpus_index () in
  let total = count_save_ops index in
  Alcotest.(check bool) "save performs several ops" true (total > 10);
  for at = 1 to total do
    List.iter
      (fun (fname, fault) ->
        let name = Printf.sprintf "save %s@%d" fname at in
        with_dir (fun dir ->
            (match Store.save ~io:(Store.Io.with_fault ~at fault) ~dir index with
            | () -> ()
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (name ^ ": structured save error")
                  true
                  (e.Xquery.Errors.code = Xquery.Errors.GTLX0008)
            | exception Store.Io.Crashed -> () (* simulated process death *)
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped save: %s" name
                  (Printexc.to_string exn));
            (* whatever the save left behind must load exactly or fail
               structurally; a torn fresh save has no manifest -> GTLX0008 *)
            check_load_outcome ~name ~expect:index ~sources:corpus_sources dir))
      faults
  done

let test_save_over_existing_fault_sweep () =
  (* crash-safety across overwrites: after a faulted save of B over a
     snapshot of A, the directory holds exactly A or exactly B *)
  let a = corpus_index () in
  let b =
    Indexer.index_strings
      [
        ( "c.xml",
          "<book><title>Different corpus</title><p>Entirely new words \
           nothing shared with the previous snapshot text.</p></book>" );
      ]
  in
  let sources =
    corpus_sources
    @ [ ( "c.xml",
          "<book><title>Different corpus</title><p>Entirely new words \
           nothing shared with the previous snapshot text.</p></book>" ) ]
  in
  let total = count_save_ops b in
  for at = 1 to total do
    List.iter
      (fun (fname, fault) ->
        let name = Printf.sprintf "overwrite %s@%d" fname at in
        with_dir (fun dir ->
            Store.save ~dir a;
            (match Store.save ~io:(Store.Io.with_fault ~at fault) ~dir b with
            | () | (exception Xquery.Errors.Error _)
            | (exception Store.Io.Crashed) ->
                ()
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped save: %s" name
                  (Printexc.to_string exn));
            check_load_outcome ~name ~expect:a ~alternates:[ b ] ~sources dir))
      faults
  done

let test_load_fault_sweep () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~dir index;
      let io = Store.Io.real () in
      ignore (Store.load ~io ~dir ());
      let total = Store.Io.ops io in
      Alcotest.(check bool) "load performs several ops" true (total > 4);
      for at = 1 to total do
        List.iter
          (fun (fname, fault) ->
            let name = Printf.sprintf "load %s@%d" fname at in
            match
              Store.load
                ~io:(Store.Io.with_fault ~at fault)
                ~sources:corpus_sources ~dir ()
            with
            | l ->
                Alcotest.(check bool)
                  (name ^ ": exact after salvage")
                  true
                  (index_eq index l.Store.index)
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: structured error (got %s)" name
                     (Xquery.Errors.code_string e.Xquery.Errors.code))
                  true (structured_storage e)
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped load: %s" name
                  (Printexc.to_string exn))
          faults
      done)

(* --- on-disk corruption (no injector: real bytes damaged) --- *)

let patch_file path off f =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string data in
  if off < Bytes.length b then
    Bytes.set b off (f (Bytes.get b off));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc b)

let truncate_file path len =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.sub data 0 (min len (String.length data))))

let snapshot_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare

let test_corruption_sweep () =
  let index = corpus_index () in
  with_dir (fun master ->
      Store.save ~dir:master index;
      let files = snapshot_files master in
      List.iter
        (fun file ->
          (* a handful of byte offsets spread over each file, plus
             truncations at interesting lengths *)
          let size =
            let ic = open_in_bin (Filename.concat master file) in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> in_channel_length ic)
          in
          let offsets = [ 0; 5; 9; 13; 26; size / 2; size - 1 ] in
          List.iter
            (fun off ->
              if off >= 0 && off < size then
                with_dir (fun dir ->
                    Store.save ~dir index;
                    patch_file (Filename.concat dir file) off
                      (fun c -> Char.chr (Char.code c lxor 0x40));
                    check_load_outcome
                      ~name:(Printf.sprintf "flip %s@%d" file off)
                      ~expect:index ~sources:corpus_sources dir))
            offsets;
          List.iter
            (fun len ->
              if len < size then
                with_dir (fun dir ->
                    Store.save ~dir index;
                    truncate_file (Filename.concat dir file) len;
                    check_load_outcome
                      ~name:(Printf.sprintf "truncate %s@%d" file len)
                      ~expect:index ~sources:corpus_sources dir))
            [ 0; 7; 24; size / 2; size - 1 ])
        files)

let expect_load_code name expected ?(sources = []) dir =
  match Store.load ~sources ~dir () with
  | _ -> Alcotest.failf "%s: load unexpectedly succeeded" name
  | exception Xquery.Errors.Error e ->
      Alcotest.(check string)
        name
        (Xquery.Errors.code_string expected)
        (Xquery.Errors.code_string e.Xquery.Errors.code)

let test_version_mismatch () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~dir index;
      (* the format version is the u32 right after the 8-byte magic *)
      patch_file (Filename.concat dir Store.manifest_name) 8 (fun _ -> '\xfe');
      expect_load_code "version mismatch" Xquery.Errors.GTLX0007 dir)

let test_missing_manifest () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~dir index;
      Sys.remove (Filename.concat dir Store.manifest_name);
      expect_load_code "missing manifest" Xquery.Errors.GTLX0008 dir)

let test_not_a_snapshot () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      expect_load_code "empty directory" Xquery.Errors.GTLX0008 dir)

let test_damaged_doc_without_sources_is_fatal () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~dir index;
      let doc_seg =
        List.find
          (fun f -> String.length f > 4 && String.sub f 0 4 = "doc-")
          (snapshot_files dir)
      in
      patch_file (Filename.concat dir doc_seg) 40 (fun c ->
          Char.chr (Char.code c lxor 0x01));
      expect_load_code "damaged doc, no sources" Xquery.Errors.GTLX0006 dir;
      (* same damage, sources provided: salvaged exactly *)
      let l = Store.load ~sources:corpus_sources ~dir () in
      Alcotest.(check bool)
        "salvage reports damage" false
        (Store.clean l.Store.report);
      Alcotest.(check (list string))
        "re-indexed the damaged document"
        [ fst (List.hd corpus_sources) ]
        l.Store.report.Store.reindexed;
      check_same "salvaged exactly" index l.Store.index)

(* --- the governor applies to loading too --- *)

let test_load_deadline () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~dir index;
      let governor =
        Xquery.Limits.governor
          { Xquery.Limits.defaults with Xquery.Limits.timeout = Some (-1.0) }
      in
      match Store.load ~governor ~dir () with
      | _ -> Alcotest.fail "expired deadline: load should not finish"
      | exception Xquery.Errors.Error e ->
          Alcotest.(check string)
            "deadline code" "gtlx:GTLX0004"
            (Xquery.Errors.code_string e.Xquery.Errors.code))

(* --- fencing epoch: round trip, regression refusal, bump atomicity --- *)

let test_epoch_roundtrip () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Alcotest.(check (option int))
        "no manifest yet" None (Store.current_epoch ~dir);
      Store.save ~dir index;
      Alcotest.(check (option int))
        "fresh directory starts at epoch 1" (Some 1)
        (Store.current_epoch ~dir);
      let l = Store.load ~dir () in
      Alcotest.(check int) "loaded epoch" 1 l.Store.epoch;
      Store.save ~epoch:5 ~dir index;
      Alcotest.(check (option int))
        "explicit epoch stamped" (Some 5) (Store.current_epoch ~dir);
      (* a compaction-style resave with no [epoch] carries it over *)
      Store.save ~dir index;
      Alcotest.(check (option int))
        "resave carries the epoch over" (Some 5) (Store.current_epoch ~dir);
      Store.bump_epoch ~dir ~epoch:7 ();
      Alcotest.(check (option int))
        "bumped" (Some 7) (Store.current_epoch ~dir);
      Store.bump_epoch ~dir ~epoch:7 ();
      Alcotest.(check (option int))
        "equal bump is a no-op" (Some 7) (Store.current_epoch ~dir);
      (match Store.bump_epoch ~dir ~epoch:6 () with
      | () -> Alcotest.fail "epoch regression must be refused"
      | exception Xquery.Errors.Error e ->
          Alcotest.(check string)
            "regression code" "gtlx:GTLX0013"
            (Xquery.Errors.code_string e.Xquery.Errors.code));
      let l = Store.load ~dir () in
      Alcotest.(check int) "epoch survives the refused bump" 7 l.Store.epoch;
      check_same "bumps never touch the index" index l.Store.index)

(* Regression: the anti-entropy fingerprint must see an epoch bump.  A
   CRC-32 of the raw frame bytes would not — the frame ends in
   crc32(payload), and a CRC over a CRC-terminated message is invariant
   under same-length payload edits (the residue property), so two
   manifests differing only in their epoch hashed identically and a
   fenced-off old primary never noticed the new timeline. *)
let test_manifest_crc_sees_epoch () =
  let index = corpus_index () in
  with_dir (fun dir ->
      Store.save ~dir index;
      let before = Store.manifest_crc ~dir in
      Alcotest.(check bool) "fingerprint exists" true (before <> None);
      Store.bump_epoch ~dir ~epoch:2 ();
      Alcotest.(check bool)
        "same-length epoch bump changes the fingerprint" true
        (Store.manifest_crc ~dir <> before))

let count_bump_ops index =
  with_dir (fun dir ->
      Store.save ~dir index;
      let io = Store.Io.real () in
      Store.bump_epoch ~io ~dir ~epoch:3 ();
      Store.Io.ops io)

let test_bump_epoch_fault_sweep () =
  (* a faulted bump leaves the old epoch, the new epoch, or a manifest
     that fails structurally — never a third epoch, never a raw
     exception, and a readable manifest always loads the exact index *)
  let index = corpus_index () in
  let total = count_bump_ops index in
  Alcotest.(check bool) "bump performs several ops" true (total > 2);
  for at = 1 to total do
    List.iter
      (fun (fname, fault) ->
        let name = Printf.sprintf "bump %s@%d" fname at in
        with_dir (fun dir ->
            Store.save ~dir index;
            (match
               Store.bump_epoch
                 ~io:(Store.Io.with_fault ~at fault)
                 ~dir ~epoch:9 ()
             with
            | () -> ()
            | exception Xquery.Errors.Error e ->
                Alcotest.(check bool)
                  (name ^ ": structured bump error")
                  true
                  (e.Xquery.Errors.code = Xquery.Errors.GTLX0008)
            | exception Store.Io.Crashed -> () (* simulated process death *)
            | exception exn ->
                Alcotest.failf "%s: raw exception escaped bump: %s" name
                  (Printexc.to_string exn));
            match Store.current_epoch ~dir with
            | Some (1 | 9) -> (
                match Store.load ~dir () with
                | l -> check_same (name ^ ": index intact") index l.Store.index
                | exception Xquery.Errors.Error e ->
                    Alcotest.failf "%s: readable manifest failed load (%s)"
                      name
                      (Xquery.Errors.code_string e.Xquery.Errors.code))
            | Some e -> Alcotest.failf "%s: torn epoch %d" name e
            | None -> (
                (* the flipped manifest got renamed in: detection, not
                   silence, is the contract *)
                match Store.load ~dir () with
                | _ ->
                    Alcotest.failf "%s: corrupt manifest loaded cleanly" name
                | exception Xquery.Errors.Error e ->
                    Alcotest.(check bool)
                      (name ^ ": corrupt manifest fails structurally")
                      true (structured_storage e))))
      faults
  done

(* --- engine level: persistence round trip and query cross-check --- *)

let usecase_query = {|//book[. ftcontains "usability" && "testing"]/title|}

let test_engine_roundtrip_query () =
  let fresh = Galatex.Engine.of_strings corpus_sources in
  let expected =
    Xquery.Value.to_display_string (Galatex.Engine.run fresh usecase_query)
  in
  with_dir (fun dir ->
      Galatex.Engine.save fresh ~dir;
      let loaded = Galatex.Engine.of_store ~dir () in
      (match Galatex.Engine.salvage_report loaded with
      | Some r -> Alcotest.(check bool) "clean load" true (Store.clean r)
      | None -> Alcotest.fail "of_store must retain a salvage report");
      Alcotest.(check string)
        "loaded engine answers identically" expected
        (Xquery.Value.to_display_string (Galatex.Engine.run loaded usecase_query));
      (* and after salvage from real corruption, still identical *)
      let post_seg =
        List.find
          (fun f -> String.length f > 5 && String.sub f 0 5 = "post-")
          (snapshot_files dir)
      in
      patch_file (Filename.concat dir post_seg) 30 (fun c ->
          Char.chr (Char.code c lxor 0x20));
      let salvaged = Galatex.Engine.of_store ~sources:corpus_sources ~dir () in
      (match Galatex.Engine.salvage_report salvaged with
      | Some r -> Alcotest.(check bool) "damage reported" false (Store.clean r)
      | None -> Alcotest.fail "salvage report missing");
      Alcotest.(check string)
        "salvaged engine answers identically" expected
        (Xquery.Value.to_display_string
           (Galatex.Engine.run salvaged usecase_query)))

let test_run_report_exposes_fallbacks_total () =
  let engine = Galatex.Engine.of_strings corpus_sources in
  let r = Galatex.Engine.run_report engine usecase_query in
  Alcotest.(check int) "no degradations yet" 0 r.Galatex.Engine.fallbacks_total;
  (* force one degradation via the step-fault injector on the pipelined
     strategy, then observe the engine-wide counter in the next report *)
  let r2 =
    Galatex.Engine.run_report engine ~strategy:Galatex.Engine.Native_pipelined
      ~fault_at:3 ~fallback:true usecase_query
  in
  Alcotest.(check bool) "fell back" true r2.Galatex.Engine.fell_back;
  Alcotest.(check int) "counter exposed" 1 r2.Galatex.Engine.fallbacks_total;
  Alcotest.(check int)
    "matches fallback_count" (Galatex.Engine.fallback_count engine)
    r2.Galatex.Engine.fallbacks_total

(* Satellite (c): a reader racing a writer over the same snapshot
   directory.  Saves are atomic (temp -> fsync -> rename, manifest last)
   and load retries when the manifest generation moves mid-load, so every
   successful concurrent load must equal one of the two indexes exactly —
   never a torn mix — and once the writer stops, loads are clean and equal
   to the last index written. *)
let test_concurrent_generations () =
  let a = corpus_index () in
  let b =
    Indexer.index_strings
      [
        ( "c.xml",
          "<doc><title>Zebra quokka</title><p>an entirely different corpus \
           with other words</p></doc>" );
      ]
  in
  with_dir (fun dir ->
      Store.save ~dir a;
      let writer_done = Atomic.make false in
      let writer =
        Thread.create
          (fun () ->
            (* 12 generations, alternating b/a: the last write is a *)
            for i = 1 to 12 do
              Store.save ~dir (if i mod 2 = 1 then b else a)
            done;
            Atomic.set writer_done true)
          ()
      in
      let loads = ref 0 and torn = ref 0 and structured = ref 0 in
      while not (Atomic.get writer_done) do
        match Store.load ~dir () with
        | l ->
            incr loads;
            if not (index_eq l.Store.index a || index_eq l.Store.index b) then
              incr torn
        | exception Xquery.Errors.Error e
          when List.mem e.Xquery.Errors.code storage_codes ->
            (* a load that exhausted its retries while the directory kept
               moving: structured, acceptable — the contract is only that
               nothing torn ever comes back as a success *)
            incr structured
      done;
      Thread.join writer;
      Alcotest.(check int) "no torn index ever observed" 0 !torn;
      Alcotest.(check bool) "reader made progress" true (!loads > 0);
      let final = Store.load ~dir () in
      Alcotest.(check bool) "final load clean" true (Store.clean final.Store.report);
      check_same "final load is the last written index" a final.Store.index)

let tests =
  [
    Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "concurrent writer vs reader generations" `Quick
      test_concurrent_generations;
    Alcotest.test_case "round trip (empty index)" `Quick test_roundtrip_empty;
    Alcotest.test_case "round trip (multi-segment words)" `Quick
      test_roundtrip_multi_segment;
    Alcotest.test_case "second save replaces first" `Quick
      test_save_replaces_previous;
    QCheck_alcotest.to_alcotest prop_roundtrip_id;
    Alcotest.test_case "save fault sweep" `Slow test_save_fault_sweep;
    Alcotest.test_case "overwrite fault sweep" `Slow
      test_save_over_existing_fault_sweep;
    Alcotest.test_case "load fault sweep" `Quick test_load_fault_sweep;
    Alcotest.test_case "on-disk corruption sweep" `Slow test_corruption_sweep;
    Alcotest.test_case "version mismatch (GTLX0007)" `Quick
      test_version_mismatch;
    Alcotest.test_case "missing manifest (GTLX0008)" `Quick
      test_missing_manifest;
    Alcotest.test_case "not a snapshot (GTLX0008)" `Quick test_not_a_snapshot;
    Alcotest.test_case "unsalvageable doc (GTLX0006) vs sources" `Quick
      test_damaged_doc_without_sources_is_fatal;
    Alcotest.test_case "deadline applies to load (GTLX0004)" `Quick
      test_load_deadline;
    Alcotest.test_case "fencing epoch round trip" `Quick test_epoch_roundtrip;
    Alcotest.test_case "manifest CRC sees same-length divergence" `Quick
      test_manifest_crc_sees_epoch;
    Alcotest.test_case "epoch bump fault sweep" `Slow
      test_bump_epoch_fault_sweep;
    Alcotest.test_case "engine save/of_store query cross-check" `Quick
      test_engine_roundtrip_query;
    Alcotest.test_case "run_report exposes fallbacks_total" `Quick
      test_run_report_exposes_fallbacks_total;
  ]
