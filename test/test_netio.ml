(* The deadline-aware I/O contract:

   1. netio operations either complete, return a transport [Error _], or
      raise the structured resource code gtlx:GTLX0014 when the absolute
      deadline passes or the peer stops making progress — they never
      hang, and expiry is detected within one select tick of the bound;
   2. the idle bound is a progress bound, not a rate cap: a slow but
      steady peer finishes, a silent one is cut off long before the
      overall deadline;
   3. frame decoding is chunking-independent (property): any split/pause
      schedule of the wire bytes yields the exact payload when the bytes
      all arrive in time, and GTLX0014 when they stall — a resumed
      dribble never misparses;
   4. faultnet is deterministic (same seed, same schedule) and each fault
      type produces the failure shape the serving stack is hardened
      against: stall/blackhole -> GTLX0014, drop -> transport error,
      throttle -> slow but correct;
   5. the Client one-shots inherit the bound: stats against a blackholed
      endpoint fails fast with gtlx:GTLX0014 instead of hanging (the
      [galatex stats --health] regression). *)

open Galatex_server

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter

let gettime = Unix.gettimeofday

(* a socketpair where both ends are ours: the unit-test harness for the
   read/write paths, no daemon involved *)
let with_pair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let expect_gtlx0014 what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected GTLX0014" what
  | exception Xquery.Errors.Error { code = Xquery.Errors.GTLX0014; _ } -> ()

(* --- framing over a live socket --- *)

let test_roundtrip () =
  with_pair (fun a b ->
      let limits = Netio.within ~idle:2.0 5.0 in
      Netio.write_frame ~limits a "hello frames";
      (match Netio.read_frame ~limits b with
      | Ok p -> Alcotest.(check string) "payload" "hello frames" p
      | Error e -> Alcotest.failf "roundtrip: %s" e);
      (* empty payload is a legal frame *)
      Netio.write_frame ~limits b "";
      match Netio.read_frame ~limits a with
      | Ok p -> Alcotest.(check string) "empty" "" p
      | Error e -> Alcotest.failf "empty roundtrip: %s" e)

let test_raw_exact () =
  with_pair (fun a b ->
      let limits = Netio.within 5.0 in
      Netio.write_all ~limits a "abcdef";
      (match Netio.read_exact ~limits b 3 with
      | Ok p -> Alcotest.(check string) "first" "abc" p
      | Error e -> Alcotest.failf "read_exact: %s" e);
      match Netio.read_exact ~limits b 3 with
      | Ok p -> Alcotest.(check string) "rest" "def" p
      | Error e -> Alcotest.failf "read_exact: %s" e)

let test_read_deadline () =
  with_pair (fun _a b ->
      let t0 = gettime () in
      expect_gtlx0014 "silent peer" (fun () ->
          Netio.read_frame ~limits:(Netio.within 0.3) b);
      let dt = gettime () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "expiry within a tick of the bound (%.2fs)" dt)
        true
        (dt >= 0.25 && dt < 1.5))

let test_idle_cuts_before_deadline () =
  with_pair (fun a b ->
      (* half a header, then silence: the progress bound must fire long
         before the generous overall deadline *)
      Netio.write_all a "\x10\x00";
      let t0 = gettime () in
      expect_gtlx0014 "stalled mid-header" (fun () ->
          Netio.read_frame ~limits:{ (Netio.within 30.0) with idle = Some 0.3 } b);
      let dt = gettime () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "idle bound, not deadline (%.2fs)" dt)
        true (dt < 2.0))

let test_slow_but_steady_survives_idle () =
  with_pair (fun a b ->
      let payload = String.init 40 (fun i -> Char.chr (65 + (i mod 26))) in
      let writer =
        Thread.create
          (fun () ->
            let buf = Bytes.create 4 in
            Bytes.set_int32_le buf 0 (Int32.of_int (String.length payload));
            let wire = Bytes.to_string buf ^ payload in
            String.iter
              (fun c ->
                Netio.write_all a (String.make 1 c);
                Thread.delay 0.01)
              wire)
          ()
      in
      (* every byte resets the idle clock: 0.2 s idle passes even though
         the whole transfer takes ~0.45 s *)
      (match Netio.read_frame ~limits:(Netio.within ~idle:0.2 5.0) b with
      | Ok p -> Alcotest.(check string) "dribbled payload" payload p
      | Error e -> Alcotest.failf "dribble: %s" e);
      Thread.join writer)

let test_write_deadline () =
  with_pair (fun a _b ->
      (* nobody reads the other end: the kernel buffer fills and the
         write must expire instead of blocking forever *)
      let big = String.make (4 * 1024 * 1024) 'x' in
      let t0 = gettime () in
      expect_gtlx0014 "mute reader" (fun () ->
          Netio.write_frame ~limits:(Netio.within 0.3) a big);
      let dt = gettime () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "write expiry bounded (%.2fs)" dt)
        true (dt < 1.5))

let test_malformed_stays_error () =
  with_pair (fun a b ->
      (* torn frame: header promises 100 bytes, peer dies after 10 *)
      let buf = Bytes.create 4 in
      Bytes.set_int32_le buf 0 100l;
      Netio.write_all a (Bytes.to_string buf ^ "0123456789");
      Unix.close a;
      (match Netio.read_frame ~limits:(Netio.within 2.0) b with
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "torn frame reported: %s" e)
            true
            (String.length e >= 10 && String.sub e 0 10 = "torn frame")
      | Ok _ -> Alcotest.fail "torn frame decoded"));
  with_pair (fun a b ->
      (* oversized length prefix is rejected without allocating *)
      let buf = Bytes.create 4 in
      Bytes.set_int32_le buf 0 (Int32.of_int (Netio.max_frame + 1));
      Netio.write_all a (Bytes.to_string buf);
      (match Netio.read_frame ~limits:(Netio.within 2.0) b with
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "oversized reported: %s" e)
            true
            (String.length e >= 9 && String.sub e 0 9 = "oversized")
      | Ok _ -> Alcotest.fail "oversized frame decoded"));
  with_pair (fun a b ->
      Unix.close a;
      match Netio.read_frame ~limits:(Netio.within 2.0) b with
      | Error "connection closed before a frame" -> ()
      | Error e -> Alcotest.failf "unexpected error: %s" e
      | Ok _ -> Alcotest.fail "decoded from a closed peer")

(* --- property: decoding is chunking-independent (satellite 3) --- *)

let prop_chunked_decode =
  let gen =
    QCheck2.Gen.(
      triple
        (string_size ~gen:printable (0 -- 300))
        (list_size (0 -- 5) (0 -- 304))
        (option (0 -- 304)))
  in
  QCheck2.Test.make ~count:15 ~name:"frame decode vs prefix/stall schedule"
    gen (fun (payload, cuts, stall_at) ->
      let buf = Bytes.create 4 in
      Bytes.set_int32_le buf 0 (Int32.of_int (String.length payload));
      let wire = Bytes.to_string buf ^ payload in
      let n = String.length wire in
      (* cut points partition the wire bytes into chunks; a short pause
         follows each chunk, and [stall_at] (clamped to the wire) makes
         the writer fall silent from that offset on *)
      let cuts = List.sort_uniq compare (List.map (fun c -> min c n) cuts) in
      let stall_at = Option.map (fun s -> min s n) stall_at in
      let sent = match stall_at with Some s -> s | None -> n in
      let ok = ref true in
      with_pair (fun a b ->
          let writer =
            Thread.create
              (fun () ->
                let pos = ref 0 in
                let emit upto =
                  let upto = min upto sent in
                  if upto > !pos then begin
                    (try Netio.write_all a (String.sub wire !pos (upto - !pos))
                     with Unix.Unix_error _ | Xquery.Errors.Error _ -> ());
                    pos := upto;
                    Thread.delay 0.015
                  end
                in
                List.iter emit cuts;
                emit n)
              ()
          in
          let limits = Netio.within ~idle:0.25 1.5 in
          (match Netio.read_frame ~limits b with
          | Ok p -> ok := sent = n && p = payload
          | Error _ -> ok := sent < n (* stall at 0 reads as closed/torn *)
          | exception Xquery.Errors.Error { code = Xquery.Errors.GTLX0014; _ }
            ->
              ok := sent < n);
          Thread.join writer);
      !ok)

(* --- faultnet --- *)

(* a minimal echo daemon speaking one frame in, the same frame out *)
let with_echo f =
  let path = fresh_name "echo" ^ ".sock" in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  let stop = Atomic.make false in
  let accept_loop () =
    while not (Atomic.get stop) do
      match Unix.select [ fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true fd with
          | c, _ ->
              ignore
                (Thread.create
                   (fun () ->
                     (try
                        let limits = Netio.within ~idle:2.0 5.0 in
                        match Netio.read_frame ~limits c with
                        | Ok p -> Netio.write_frame ~limits c p
                        | Error _ -> ()
                      with _ -> ());
                     try Unix.close c with Unix.Unix_error _ -> ())
                   ())
          | exception Unix.Unix_error _ -> ())
    done
  in
  let th = Thread.create accept_loop () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let with_proxy ~plan_for target f =
  let listen = fresh_name "fnet" ^ ".sock" in
  let t = Faultnet.start ~listen ~target ~plan_for in
  Fun.protect ~finally:(fun () -> Faultnet.stop t) (fun () -> f listen t)

let test_faultnet_determinism () =
  let plans seed =
    let p =
      Faultnet.seeded_plans ~seed ~p_stall:0.3 ~p_drop:0.2 ~p_throttle:0.3
        ~latency:0.01 ~jitter:0.02 ~rate:1000 ()
    in
    List.init 50 p
  in
  Alcotest.(check bool) "same seed, same schedule" true (plans 7 = plans 7);
  Alcotest.(check bool)
    "different seed, different schedule" true
    (plans 7 <> plans 8)

let test_faultnet_clean () =
  with_echo (fun echo ->
      with_proxy ~plan_for:(fun _ -> (Faultnet.clean, Faultnet.clean)) echo
        (fun proxy t ->
          let limits = Netio.within 5.0 in
          let fd = Netio.connect ~limits proxy in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Netio.write_frame ~limits fd "through the proxy";
              match Netio.read_frame ~limits fd with
              | Ok p ->
                  Alcotest.(check string) "echoed" "through the proxy" p;
                  Alcotest.(check int) "accepted" 1 (Faultnet.connections t)
              | Error e -> Alcotest.failf "clean proxy: %s" e);
          (* stop is idempotent *)
          Faultnet.stop t;
          Faultnet.stop t))

let test_faultnet_stall () =
  with_echo (fun echo ->
      with_proxy
        ~plan_for:(fun _ -> (Faultnet.stalled (), Faultnet.clean))
        echo
        (fun proxy _ ->
          let fd = Netio.connect ~limits:(Netio.within 2.0) proxy in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Netio.write_frame ~limits:(Netio.within 2.0) fd "swallowed";
              let t0 = gettime () in
              expect_gtlx0014 "stalled link" (fun () ->
                  Netio.read_frame ~limits:(Netio.within 0.4) fd);
              Alcotest.(check bool)
                "bounded" true
                (gettime () -. t0 < 1.5))))

let test_faultnet_blackhole () =
  with_echo (fun echo ->
      let hole = { Faultnet.clean with Faultnet.blackhole = true } in
      with_proxy ~plan_for:(fun _ -> (hole, hole)) echo (fun proxy _ ->
          (* accept-then-hang: connect succeeds, nothing ever answers *)
          let fd = Netio.connect ~limits:(Netio.within 2.0) proxy in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Netio.write_frame ~limits:(Netio.within 2.0) fd "into the void";
              expect_gtlx0014 "blackhole" (fun () ->
                  Netio.read_frame ~limits:(Netio.within 0.4) fd))))

let test_faultnet_drop () =
  with_echo (fun echo ->
      with_proxy
        ~plan_for:(fun _ -> (Faultnet.clean, Faultnet.dropping ()))
        echo
        (fun proxy _ ->
          let fd = Netio.connect ~limits:(Netio.within 2.0) proxy in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (try Netio.write_frame ~limits:(Netio.within 2.0) fd "doomed"
               with
              | Unix.Unix_error _ -> ()
              | Xquery.Errors.Error _ -> ());
              (* the reply direction severs on its first byte: any
                 bounded failure is fine, a hang or a decode is not *)
              match Netio.read_frame ~limits:(Netio.within 1.0) fd with
              | Error _ -> ()
              | Ok p -> Alcotest.failf "read %S through a dropped link" p
              | exception Xquery.Errors.Error _ -> ()
              | exception Unix.Unix_error _ -> ())))

let test_faultnet_throttle () =
  with_echo (fun echo ->
      with_proxy
        ~plan_for:(fun _ -> (Faultnet.throttled 2000, Faultnet.clean))
        echo
        (fun proxy _ ->
          let payload = String.make 1000 'z' in
          let limits = Netio.within 10.0 in
          let fd = Netio.connect ~limits proxy in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let t0 = gettime () in
              Netio.write_frame ~limits fd payload;
              match Netio.read_frame ~limits fd with
              | Ok p ->
                  let dt = gettime () -. t0 in
                  Alcotest.(check string) "throttled payload intact" payload p;
                  Alcotest.(check bool)
                    (Printf.sprintf "rate cap slowed the link (%.2fs)" dt)
                    true (dt >= 0.2)
              | Error e -> Alcotest.failf "throttled link: %s" e)))

let test_one_shot_does_not_hang () =
  with_echo (fun echo ->
      let hole = { Faultnet.clean with Faultnet.blackhole = true } in
      with_proxy ~plan_for:(fun _ -> (hole, hole)) echo (fun proxy _ ->
          let t0 = gettime () in
          (match Client.stats ~recv_timeout:0.4 ~socket_path:proxy () with
          | Error reason ->
              Alcotest.(check bool)
                (Printf.sprintf "structured deadline error: %s" reason)
                true
                (String.length reason >= 14
                && String.sub reason 0 14 = "gtlx:GTLX0014:")
          | Ok _ -> Alcotest.fail "stats answered through a blackhole");
          let dt = gettime () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "stats bounded (%.2fs)" dt)
            true (dt < 2.0)))

let tests =
  [
    Alcotest.test_case "frame roundtrip under limits" `Quick test_roundtrip;
    Alcotest.test_case "raw read_exact/write_all" `Quick test_raw_exact;
    Alcotest.test_case "read deadline expiry (GTLX0014)" `Quick
      test_read_deadline;
    Alcotest.test_case "idle bound cuts a silent peer" `Quick
      test_idle_cuts_before_deadline;
    Alcotest.test_case "slow but steady beats the idle bound" `Quick
      test_slow_but_steady_survives_idle;
    Alcotest.test_case "write deadline expiry (GTLX0014)" `Quick
      test_write_deadline;
    Alcotest.test_case "malformed frames stay Error" `Quick
      test_malformed_stays_error;
    QCheck_alcotest.to_alcotest prop_chunked_decode;
    Alcotest.test_case "faultnet: seeded schedule is deterministic" `Quick
      test_faultnet_determinism;
    Alcotest.test_case "faultnet: clean proxy is transparent" `Quick
      test_faultnet_clean;
    Alcotest.test_case "faultnet: stall -> GTLX0014" `Quick test_faultnet_stall;
    Alcotest.test_case "faultnet: blackhole -> GTLX0014" `Quick
      test_faultnet_blackhole;
    Alcotest.test_case "faultnet: drop -> transport error" `Quick
      test_faultnet_drop;
    Alcotest.test_case "faultnet: throttle slows but stays exact" `Quick
      test_faultnet_throttle;
    Alcotest.test_case "client one-shot never hangs (stats)" `Quick
      test_one_shot_does_not_hang;
  ]
